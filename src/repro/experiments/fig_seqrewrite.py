"""Figure 18: erroneous-retransmission overhead of sequence rewriting vs. loss.

Methodology (paper §7.2): a rate-adapted video stream traverses the SFU while
its *uplink* (sender to SFU) suffers random loss and reordering.  The SFU
suppresses packets according to the skip cadence and rewrites sequence numbers
with one of the heuristics.  The overhead metric is the fraction of extra
retransmissions the receiver triggers relative to what an oracle rewriter
(which knows exactly which packets were suppressed vs. lost) would have
caused.  The paper reports <5% overhead up to 10% loss, ~7.5% at 20% loss, and
below 20% even at extreme loss rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
    ideal_rewrite_map,
)
from ..rtp.packet import SEQ_MOD
from ..webrtc.encoder import L1T3_TEMPORAL_PATTERN


@dataclass(frozen=True)
class SyntheticPacket:
    """One packet of the synthetic rate-adapted stream."""

    sequence_number: int
    frame_number: int
    temporal_layer: int
    suppressed: bool     # dropped by the SFU for rate adaptation
    lost: bool           # lost on the uplink before reaching the SFU
    reordered: bool


@dataclass(frozen=True)
class RewriteOverheadPoint:
    """One x-value of Figure 18.

    ``erroneous_retransmission_rate`` is the paper's metric: retransmissions
    the receiver requests that an oracle rewriter would not have triggered,
    as a fraction of the stream's packets.  ``masked_loss_rate`` captures the
    opposite failure mode (a genuine loss hidden by an over-eager rewrite), and
    ``total_mismatch_rate`` is their sum.
    """

    loss_rate: float
    erroneous_retransmission_rate: float
    masked_loss_rate: float
    total_mismatch_rate: float
    heuristic_retransmissions: int
    oracle_retransmissions: int
    packets_forwarded: int
    duplicates_emitted: int


def generate_stream(
    num_frames: int,
    packets_per_frame: int,
    loss_rate: float,
    reorder_rate: float,
    decode_target: int,
    seed: int,
) -> List[SyntheticPacket]:
    """Generate the ground-truth packet history of one rate-adapted stream."""
    rng = random.Random(seed)
    packets: List[SyntheticPacket] = []
    sequence = rng.randrange(SEQ_MOD)
    for frame_index in range(num_frames):
        layer = L1T3_TEMPORAL_PATTERN[frame_index % len(L1T3_TEMPORAL_PATTERN)]
        suppressed = layer > decode_target
        for _ in range(packets_per_frame):
            packets.append(
                SyntheticPacket(
                    sequence_number=sequence,
                    frame_number=frame_index & 0xFFFF,
                    temporal_layer=layer,
                    suppressed=suppressed,
                    lost=rng.random() < loss_rate,
                    reordered=rng.random() < reorder_rate,
                )
            )
            sequence = (sequence + 1) % SEQ_MOD
    return packets


def _arrival_order(packets: Sequence[SyntheticPacket], seed: int) -> List[SyntheticPacket]:
    """Arrival order at the SFU: lost packets never arrive, reordered packets
    arrive a couple of positions late."""
    rng = random.Random(seed + 1)
    arrived = [p for p in packets if not p.lost]
    order = list(range(len(arrived)))
    for index, packet in enumerate(arrived):
        if packet.reordered:
            order[index] += rng.randint(1, 4)
    return [arrived[i] for i in sorted(range(len(arrived)), key=lambda i: (order[i], i))]


def _retransmission_mismatch(
    delivered: Sequence[Tuple[int, int, int]], safety_drops: int
) -> Tuple[int, int, int]:
    """Count retransmission-relevant mismatches between heuristic and oracle.

    ``delivered`` holds ``(original_seq, heuristic_seq, ideal_seq)`` for every
    packet the receiver actually got.  Walking packets in original order, the
    gap a receiver perceives between two consecutively delivered packets is
    compared under both numberings:

    * a larger heuristic gap means the receiver NACKs sequence numbers it
      should not (**extra retransmissions**, the paper's metric), and
    * a smaller heuristic gap means a genuine loss was masked, so a needed
      retransmission is never requested (**masked losses**).

    Packets the heuristic dropped to avoid emitting a duplicate also trigger
    an unnecessary retransmission.  Returns
    ``(extra_retransmissions, masked_losses, oracle_retransmissions)``.
    """
    ordered = sorted(delivered, key=lambda item: item[0])
    extra = safety_drops
    masked = 0
    oracle_retx = 0
    for (_, h_prev, i_prev), (_, h_cur, i_cur) in zip(ordered, ordered[1:]):
        heuristic_gap = max(0, h_cur - h_prev - 1)
        ideal_gap = max(0, i_cur - i_prev - 1)
        if heuristic_gap > ideal_gap:
            extra += heuristic_gap - ideal_gap
        else:
            masked += ideal_gap - heuristic_gap
        oracle_retx += ideal_gap
    return extra, masked, oracle_retx


def evaluate_loss_rate(
    loss_rate: float,
    variant: str = "s_lr",
    num_frames: int = 4_000,
    packets_per_frame: int = 3,
    reorder_rate: float = 0.02,
    decode_target: int = 1,
    seed: int = 42,
) -> RewriteOverheadPoint:
    """Measure the erroneous retransmission rate at one loss rate."""
    packets = generate_stream(num_frames, packets_per_frame, loss_rate, reorder_rate, decode_target, seed)
    cadence = SkipCadence.for_decode_target(decode_target)
    if variant == "s_lm":
        rewriter = SequenceRewriterLowMemory(cadence)
    elif variant == "s_lr":
        rewriter = SequenceRewriterLowRetransmission(cadence)
    else:
        raise ValueError(f"unknown rewrite variant: {variant}")

    ideal = ideal_rewrite_map([(p.sequence_number, p.suppressed, p.lost) for p in packets])
    base_seq = packets[0].sequence_number

    # --- heuristic path: the SFU sees packets in arrival order --------------------
    delivered: List[Tuple[int, int, int]] = []
    emitted: List[int] = []
    for packet in _arrival_order(packets, seed):
        rewritten = rewriter.on_packet(
            packet.sequence_number, packet.frame_number, forward=not packet.suppressed
        )
        if rewritten is None:
            continue
        emitted.append(rewritten)
        ideal_seq = ideal[packet.sequence_number]
        if ideal_seq is None:
            continue
        # unwrap both numberings relative to the stream start so gap
        # arithmetic is monotone even across the 16-bit wrap
        original_linear = (packet.sequence_number - base_seq) % SEQ_MOD
        heuristic_linear = (rewritten - base_seq) % SEQ_MOD
        ideal_linear = (ideal_seq - base_seq) % SEQ_MOD
        delivered.append((original_linear, heuristic_linear, ideal_linear))

    extra, masked, oracle_retx = _retransmission_mismatch(
        delivered, rewriter.packets_dropped_for_safety
    )
    duplicates = len(emitted) - len(set(emitted))

    # normalize by the size of the media stream (as in the paper's Figure 18,
    # where the overhead is a per-packet fraction of the rate-adapted stream)
    total_packets = max(len(packets), 1)
    return RewriteOverheadPoint(
        loss_rate=loss_rate,
        erroneous_retransmission_rate=extra / total_packets,
        masked_loss_rate=masked / total_packets,
        total_mismatch_rate=(extra + masked) / total_packets,
        heuristic_retransmissions=extra + oracle_retx,
        oracle_retransmissions=oracle_retx,
        packets_forwarded=len(delivered),
        duplicates_emitted=duplicates,
    )


def run_rewrite_overhead_sweep(
    loss_rates: Optional[Sequence[float]] = None,
    variant: str = "s_lr",
    num_frames: int = 4_000,
    seed: int = 42,
) -> List[RewriteOverheadPoint]:
    """The Figure 18 sweep: overhead vs. loss rate for one rewrite variant."""
    rates = list(loss_rates) if loss_rates is not None else [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0]
    return [
        evaluate_loss_rate(rate, variant=variant, num_frames=num_frames, seed=seed)
        for rate in rates
    ]


def format_sweep(points: Sequence[RewriteOverheadPoint]) -> str:
    lines = [f"{'loss':>6}{'err. retx rate':>16}{'heuristic':>11}{'oracle':>8}"]
    for point in points:
        lines.append(
            f"{point.loss_rate:>6.2f}{point.erroneous_retransmission_rate:>16.4f}"
            f"{point.heuristic_retransmissions:>11}{point.oracle_retransmissions:>8}"
        )
    return "\n".join(lines)
