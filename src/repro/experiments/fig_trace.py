"""Campus-trace figures: 2 (streams per meeting), 20/21 (concurrency),
22 (software-SFU vs. switch-agent byte rates), 23/24 (SVC adaptation in the
wild), and Table 2 (capture summary)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rtp.av1 import DecodeTarget
from ..trace.packet_trace import CampusPacketTrace, CaptureSummary, ForwardedStream, SvcAdaptationTrace
from ..trace.workload import weekly_byte_comparison
from ..trace.zoom_api import ZoomApiDataset, ZoomApiDatasetConfig

DEFAULT_DATASET_MEETINGS = 2_000


def build_dataset(num_meetings: int = DEFAULT_DATASET_MEETINGS, seed: int = 2022) -> ZoomApiDataset:
    """A campus dataset sized for quick benchmark runs.

    Pass ``num_meetings=19_704`` to match the paper's dataset exactly.
    """
    return ZoomApiDataset.generate(ZoomApiDatasetConfig(num_meetings=num_meetings, seed=seed))


@dataclass(frozen=True)
class StreamsPerMeetingResult:
    """Figure 2: streams at the SFU vs. meeting size."""

    summary: Dict[int, Tuple[int, float, int]]   # participants -> (min, median, max)

    def median_for(self, participants: int) -> Optional[float]:
        entry = self.summary.get(participants)
        return None if entry is None else entry[1]

    def upper_bound(self, participants: int) -> int:
        """Theoretical bound if every participant shares audio + video."""
        return 2 * participants * participants


def run_streams_per_meeting(dataset: Optional[ZoomApiDataset] = None) -> StreamsPerMeetingResult:
    dataset = dataset or build_dataset()
    return StreamsPerMeetingResult(summary=dataset.streams_per_meeting_summary())


@dataclass(frozen=True)
class ConcurrencyResult:
    """Figures 20 and 21: concurrent meetings / participants over time."""

    series: List[Tuple[float, int, int]]
    peak_meetings: int
    peak_participants: int


def run_concurrency(dataset: Optional[ZoomApiDataset] = None, step_s: float = 1800.0) -> ConcurrencyResult:
    dataset = dataset or build_dataset()
    series = dataset.concurrency_series(step_s=step_s)
    return ConcurrencyResult(
        series=series,
        peak_meetings=max((s[1] for s in series), default=0),
        peak_participants=max((s[2] for s in series), default=0),
    )


@dataclass(frozen=True)
class AgentBytesResult:
    """Figure 22: software-SFU vs. switch-agent byte rates over a week."""

    series: List[Tuple[float, float, float]]
    peak_software_bps: float
    peak_agent_bps: float
    reduction_factor: float


def run_agent_bytes(dataset: Optional[ZoomApiDataset] = None, step_s: float = 3600.0) -> AgentBytesResult:
    dataset = dataset or build_dataset()
    series = weekly_byte_comparison(dataset, step_s=step_s)
    peak_software = max((s[1] for s in series), default=0.0)
    peak_agent = max((s[2] for s in series), default=0.0)
    return AgentBytesResult(
        series=series,
        peak_software_bps=peak_software,
        peak_agent_bps=peak_agent,
        reduction_factor=(peak_software / peak_agent) if peak_agent else 0.0,
    )


@dataclass(frozen=True)
class SvcAdaptationFigures:
    """Figures 23 and 24: per-receiver and per-layer forwarded rates."""

    sender: ForwardedStream
    receiver_12: ForwardedStream
    receiver_17: ForwardedStream

    def receiver_rate_dropped(self) -> bool:
        """Whether the forwarded rate visibly drops after the SFU adapts."""
        early = [s.rate_kbps for s in self.receiver_17.samples[30:60]]
        late = [s.rate_kbps for s in self.receiver_17.samples[-30:]]
        return sum(late) / len(late) < 0.8 * sum(early) / len(early)


def run_svc_adaptation_example(seed: int = 7) -> SvcAdaptationFigures:
    trace = SvcAdaptationTrace(seed=seed)
    return SvcAdaptationFigures(
        sender=trace.sender_series(),
        receiver_12=trace.receiver_series(receiver=12, reduce_at_s=110.0, reduce_to=DecodeTarget.DT1),
        receiver_17=trace.receiver_series(receiver=17, reduce_at_s=200.0, reduce_to=DecodeTarget.DT1),
    )


def run_capture_summary(dataset: Optional[ZoomApiDataset] = None) -> CaptureSummary:
    """Table 2: summary of a 12-hour synthetic campus capture."""
    dataset = dataset or build_dataset()
    trace = CampusPacketTrace(dataset)
    # summarize the busiest 12-hour window (a weekday working period)
    return trace.capture_summary(duration_s=12 * 3600.0, start_s=dataset.config.start_epoch_s + 8 * 3600.0)
