"""Table 1: packet/byte split between the data plane and the control plane.

Methodology (paper §7.1): a three-party Scallop meeting where every participant
sends a 720p AV1 SVC video stream and an audio stream runs for ten minutes;
every packet arriving at the SFU is classified by protocol and by whether the
data plane can handle it alone or whether (a copy of) it must go to the switch
CPU.  The headline result is that ~96.5% of packets and ~99.7% of bytes stay
in the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dataplane.parser import PacketClass
from ..scenario import MeetingSpec, Scenario, Testbed, build_scenario


@dataclass(frozen=True)
class PacketAccountingRow:
    """One row of Table 1."""

    label: str
    packets: float
    packet_share: float
    packets_per_second: float
    kilobytes: float
    byte_share: float


@dataclass(frozen=True)
class PacketAccountingResult:
    """The full Table 1: per-protocol rows plus the plane totals."""

    duration_s: float
    participants: int
    rows: List[PacketAccountingRow]
    data_plane_packet_share: float
    data_plane_byte_share: float
    control_plane_packet_share: float
    control_plane_byte_share: float

    def row(self, label: str) -> PacketAccountingRow:
        for entry in self.rows:
            if entry.label == label:
                return entry
        raise KeyError(label)


def run_packet_accounting(
    duration_s: float = 60.0,
    participants: int = 3,
    video_bitrate_bps: float = 2_200_000.0,
    seed: int = 1,
) -> PacketAccountingResult:
    """Run the Table 1 experiment and return the per-participant accounting.

    ``duration_s`` defaults to one minute to keep the default benchmark run
    short; pass 600 to match the paper's ten-minute capture exactly (the
    shares converge within a few seconds because the workload is stationary).
    """
    scenario = Scenario(
        name="table1-packet-split",
        meetings=(
            MeetingSpec(participants=participants, video_bitrate_bps=video_bitrate_bps),
        ),
        duration_s=duration_s,
        seed=seed,
    )
    with build_scenario(scenario) as testbed:
        testbed.run()
        return summarize(testbed, duration_s, participants)


def summarize(testbed: Testbed, duration_s: float, participants: int) -> PacketAccountingResult:
    """Build the Table 1 structure from the pipeline's counters."""
    sfu = testbed.sfu
    counters = sfu.pipeline.counters  # type: ignore[attr-defined]
    agent = sfu.agent.counters        # type: ignore[attr-defined]

    per_participant = max(participants, 1)
    by_packets = counters.by_class_packets
    by_bytes = counters.by_class_bytes
    total_packets = sum(by_packets.values())
    total_bytes = sum(by_bytes.values())

    def share(value: float, total: float) -> float:
        return value / total if total else 0.0

    def make_row(label: str, packets: float, byte_count: float) -> PacketAccountingRow:
        return PacketAccountingRow(
            label=label,
            packets=packets / per_participant,
            packet_share=share(packets, total_packets),
            packets_per_second=packets / per_participant / duration_s if duration_s else 0.0,
            kilobytes=byte_count / per_participant / 1000.0,
            byte_share=share(byte_count, total_bytes),
        )

    audio_packets = by_packets.get(PacketClass.RTP_AUDIO.value, 0)
    audio_bytes = by_bytes.get(PacketClass.RTP_AUDIO.value, 0)
    video_packets = by_packets.get(PacketClass.RTP_VIDEO.value, 0)
    video_bytes = by_bytes.get(PacketClass.RTP_VIDEO.value, 0)
    extended_dd = agent.extended_descriptors_handled
    sender_rtcp_packets = by_packets.get(PacketClass.RTCP_SENDER.value, 0)
    sender_rtcp_bytes = by_bytes.get(PacketClass.RTCP_SENDER.value, 0)
    feedback_packets = by_packets.get(PacketClass.RTCP_FEEDBACK.value, 0)
    feedback_bytes = by_bytes.get(PacketClass.RTCP_FEEDBACK.value, 0)
    stun_packets = by_packets.get(PacketClass.STUN.value, 0)
    stun_bytes = by_bytes.get(PacketClass.STUN.value, 0)

    rows = [
        make_row("RTP", audio_packets + video_packets, audio_bytes + video_bytes),
        make_row("RTP-Audio", audio_packets, audio_bytes),
        make_row("RTP-Video", video_packets, video_bytes),
        make_row("RTP-AV1-DD", extended_dd, 0.0),
        make_row("RTCP", sender_rtcp_packets + feedback_packets, sender_rtcp_bytes + feedback_bytes),
        make_row("RTCP-SR/SDES", sender_rtcp_packets, sender_rtcp_bytes),
        make_row("RTCP-RR/REMB", feedback_packets, feedback_bytes),
        make_row("STUN", stun_packets, stun_bytes),
        make_row("Control-Plane", counters.cpu_packets, counters.cpu_bytes),
        make_row("Data-Plane", counters.data_plane_packets, counters.data_plane_bytes),
        make_row("Total", total_packets, total_bytes),
    ]

    return PacketAccountingResult(
        duration_s=duration_s,
        participants=participants,
        rows=rows,
        data_plane_packet_share=share(counters.data_plane_packets, total_packets),
        data_plane_byte_share=share(counters.data_plane_bytes, total_bytes),
        control_plane_packet_share=share(counters.cpu_packets, total_packets),
        control_plane_byte_share=share(counters.cpu_bytes, total_bytes),
    )


def format_table(result: PacketAccountingResult) -> str:
    """Render the result in the layout of Table 1."""
    lines = [
        f"Packets per participant sent to the SFU ({result.duration_s:.0f} s, "
        f"{result.participants} participants)",
        f"{'Proto./Type':<16}{'Packets':>12}{'Pct.':>8}{'Per sec.':>10}{'KBytes':>12}{'Pct.':>8}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.label:<16}{row.packets:>12.0f}{row.packet_share * 100:>8.2f}"
            f"{row.packets_per_second:>10.2f}{row.kilobytes:>12.1f}{row.byte_share * 100:>8.2f}"
        )
    lines.append(
        f"Data plane handles {result.data_plane_packet_share * 100:.2f}% of packets and "
        f"{result.data_plane_byte_share * 100:.2f}% of bytes"
    )
    return "\n".join(lines)
