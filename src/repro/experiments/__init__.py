"""One module per paper table/figure, plus shared experiment scaffolding.

Every experiment topology is built through the declarative Scenario API
(:mod:`repro.scenario`); the flat ``MeetingSetupConfig``/``build_*_testbed``
builders re-exported here are deprecated shims kept for source
compatibility (see :mod:`repro.experiments.runner`).

| Paper artifact | Module |
|---|---|
| Table 1 (control/data-plane packet split) | :mod:`repro.experiments.table_packets` |
| Table 2 (capture summary) / Figures 2, 20-24 | :mod:`repro.experiments.fig_trace` |
| Table 3 (Tofino resources) | :mod:`repro.experiments.table_resources` |
| Figures 3-4 (software SFU overload) | :mod:`repro.experiments.fig_overload` |
| Figure 14 (SVC rate adaptation) | :mod:`repro.experiments.fig_rate_adaptation` |
| Figures 15-17 (scalability) | :mod:`repro.experiments.fig_scalability` |
| Figure 18 (sequence rewriting overhead) | :mod:`repro.experiments.fig_seqrewrite` |
| Figure 19 (forwarding latency) | :mod:`repro.experiments.fig_latency` |
"""

from .runner import MeetingSetupConfig, Testbed, add_participant, build_scallop_testbed, build_software_testbed
from .coordstats import CoordinatorStats
from .batch_throughput import (
    BatchThroughputPoint,
    ObsOverheadPoint,
    ParallelismPoint,
    RebalancePoint,
    ShardThroughputPoint,
    build_meeting_pipeline,
    build_skewed_meeting_pipeline,
    format_batch_sweep,
    format_parallelism_matrix,
    format_rebalance_point,
    format_shard_sweep,
    gil_enabled,
    measure_coordinator_profile,
    measure_obs_overhead,
    measure_parallelism_crossover,
    measure_parallelism_point,
    measure_rebalance_point,
    measure_shard_point,
    measure_shard_transport,
    media_ingress,
    protect_media_ingress,
    run_batch_throughput_sweep,
    run_parallelism_matrix,
    run_shard_throughput_sweep,
    skewed_media_ingress,
    zipf_frames,
)
from .table_packets import PacketAccountingResult, format_table, run_packet_accounting
from .table_resources import ResourceReport, format_report, run_resource_report
from .fig_latency import LatencyComparisonResult, format_comparison, run_latency_comparison
from .fig_overload import OverloadConfig, OverloadResult, format_overload, run_overload_experiment
from .fig_rate_adaptation import (
    RateAdaptationConfig,
    RateAdaptationResult,
    format_rate_adaptation,
    run_rate_adaptation,
)
from .fig_scalability import (
    ScalabilityHeadline,
    ShardScalingPoint,
    format_design_space,
    format_headline,
    format_shard_scaling,
    headline_numbers,
    run_design_space_sweep,
    run_improvement_sweep,
    run_minmax_sweep,
    run_shard_scaling_sweep,
)
from .fig_seqrewrite import (
    RewriteOverheadPoint,
    evaluate_loss_rate,
    format_sweep,
    run_rewrite_overhead_sweep,
)
from .fig_trace import (
    AgentBytesResult,
    ConcurrencyResult,
    StreamsPerMeetingResult,
    SvcAdaptationFigures,
    build_dataset,
    run_agent_bytes,
    run_capture_summary,
    run_concurrency,
    run_streams_per_meeting,
    run_svc_adaptation_example,
)

__all__ = [
    "MeetingSetupConfig",
    "Testbed",
    "add_participant",
    "build_scallop_testbed",
    "build_software_testbed",
    "BatchThroughputPoint",
    "CoordinatorStats",
    "ObsOverheadPoint",
    "ParallelismPoint",
    "RebalancePoint",
    "ShardThroughputPoint",
    "build_meeting_pipeline",
    "build_skewed_meeting_pipeline",
    "format_batch_sweep",
    "format_parallelism_matrix",
    "format_rebalance_point",
    "format_shard_sweep",
    "gil_enabled",
    "measure_coordinator_profile",
    "measure_obs_overhead",
    "measure_parallelism_crossover",
    "measure_parallelism_point",
    "measure_rebalance_point",
    "measure_shard_point",
    "measure_shard_transport",
    "media_ingress",
    "protect_media_ingress",
    "run_batch_throughput_sweep",
    "run_parallelism_matrix",
    "run_shard_throughput_sweep",
    "skewed_media_ingress",
    "zipf_frames",
    "PacketAccountingResult",
    "format_table",
    "run_packet_accounting",
    "ResourceReport",
    "format_report",
    "run_resource_report",
    "LatencyComparisonResult",
    "format_comparison",
    "run_latency_comparison",
    "OverloadConfig",
    "OverloadResult",
    "format_overload",
    "run_overload_experiment",
    "RateAdaptationConfig",
    "RateAdaptationResult",
    "format_rate_adaptation",
    "run_rate_adaptation",
    "ScalabilityHeadline",
    "ShardScalingPoint",
    "format_design_space",
    "format_headline",
    "format_shard_scaling",
    "headline_numbers",
    "run_design_space_sweep",
    "run_improvement_sweep",
    "run_minmax_sweep",
    "run_shard_scaling_sweep",
    "RewriteOverheadPoint",
    "evaluate_loss_rate",
    "format_sweep",
    "run_rewrite_overhead_sweep",
    "AgentBytesResult",
    "ConcurrencyResult",
    "StreamsPerMeetingResult",
    "SvcAdaptationFigures",
    "build_dataset",
    "run_agent_bytes",
    "run_capture_summary",
    "run_concurrency",
    "run_streams_per_meeting",
    "run_svc_adaptation_example",
]
