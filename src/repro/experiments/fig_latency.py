"""Figure 19: RTP forwarding-latency comparison, Scallop vs. the software SFU.

Methodology (paper §7.3): two participants hold a call through either SFU on a
directly connected testbed; the per-packet latency of RTP media packets is
recorded and compared as a CDF.  The paper reports a 26.8x lower median and an
8.5x lower 99th percentile for Scallop.

In the reproduction both topologies use identical, short access links so the
difference between the two CDFs isolates the SFU-induced delay: the Tofino
model forwards with a fixed ~12 us pipeline delay while the software SFU pays
the CPU/OS cost model per received and per sent packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.metrics import LatencySummary, cdf
from ..netsim.link import LinkProfile
from ..scenario import BackendSpec, MeetingSpec, Scenario, build_scenario

#: Access link of the directly connected testbed clients (1 Gbit/s, ~20 us).
TESTBED_ACCESS = LinkProfile(bandwidth_bps=1_000_000_000.0, propagation_delay_s=0.00002)
TESTBED_SFU_LINK = LinkProfile(bandwidth_bps=1_000_000_000.0, propagation_delay_s=0.00002)


@dataclass(frozen=True)
class LatencyComparisonResult:
    """Latency distributions for both SFUs plus the paper's headline ratios.

    ``scallop`` / ``software`` summarize the *SFU-induced* forwarding latency
    (switch pipeline vs. CPU receive+send path); ``*_end_to_end`` summarize
    the sender-to-receiver latency observed by the clients, which additionally
    contains the (identical) link delays of the two topologies.
    """

    scallop: LatencySummary
    software: LatencySummary
    scallop_end_to_end: LatencySummary
    software_end_to_end: LatencySummary
    scallop_cdf: List[Tuple[float, float]]
    software_cdf: List[Tuple[float, float]]
    median_improvement: float
    p99_improvement: float


def run_latency_comparison(
    duration_s: float = 20.0,
    video_bitrate_bps: float = 2_200_000.0,
    seed: int = 3,
) -> LatencyComparisonResult:
    """Run the two-party latency experiment on both SFUs."""
    meeting = MeetingSpec(
        participants=2,
        video_bitrate_bps=video_bitrate_bps,
        uplink=TESTBED_ACCESS,
        downlink=TESTBED_ACCESS,
    )

    def scenario(backend: BackendSpec) -> Scenario:
        return Scenario(
            name="fig19-latency",
            meetings=(meeting,),
            backend=backend,
            duration_s=duration_s,
            seed=seed,
        )

    with build_scenario(
        scenario(BackendSpec(kind="scallop", sfu_link=TESTBED_SFU_LINK))
    ) as scallop_bed:
        scallop_bed.run()
        scallop_samples = list(scallop_bed.sfu.forwarding_latency_samples_ms)  # type: ignore[attr-defined]
        scallop_e2e = _collect_latency(scallop_bed.clients)

    with build_scenario(
        scenario(BackendSpec(kind="software", cores=1, sfu_link=TESTBED_SFU_LINK))
    ) as software_bed:
        software_bed.run()
        software_samples = list(software_bed.sfu.forwarding_latency_samples_ms)  # type: ignore[attr-defined]
        software_e2e = _collect_latency(software_bed.clients)

    scallop_summary = LatencySummary.from_samples(scallop_samples)
    software_summary = LatencySummary.from_samples(software_samples)
    return LatencyComparisonResult(
        scallop=scallop_summary,
        software=software_summary,
        scallop_end_to_end=LatencySummary.from_samples(scallop_e2e),
        software_end_to_end=LatencySummary.from_samples(software_e2e),
        scallop_cdf=cdf(scallop_samples),
        software_cdf=cdf(software_samples),
        median_improvement=software_summary.median / scallop_summary.median,
        p99_improvement=software_summary.p99 / scallop_summary.p99,
    )


def _collect_latency(clients) -> List[float]:
    samples: List[float] = []
    for client in clients:
        samples.extend(client.rtp_latency_samples_ms)
    return samples


def format_comparison(result: LatencyComparisonResult) -> str:
    """Render the Figure 19 headline numbers."""
    return "\n".join(
        [
            "RTP forwarding latency (ms), two-party call:",
            f"  Scallop   median={result.scallop.median:.3f}  p99={result.scallop.p99:.3f}",
            f"  Mediasoup median={result.software.median:.3f}  p99={result.software.p99:.3f}",
            f"  median improvement: {result.median_improvement:.1f}x, "
            f"p99 improvement: {result.p99_improvement:.1f}x",
        ]
    )
