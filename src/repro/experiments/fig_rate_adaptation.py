"""Figure 14: Scallop's SVC rate adaptation on a constrained downlink.

Methodology (paper §7.3): a three-party call in which all participants send and
receive video; one participant's downlink degrades (twice), forcing the SFU to
reduce the frame rate of the streams it forwards to that participant from 30
to 15 fps while the senders keep transmitting at full quality and the other
participants keep receiving 30 fps.  The figure plots per-participant send
frame rate, receive frame rate, and the constrained participant's receive
bitrate per origin stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netsim.link import LinkProfile
from ..rtp.av1 import DecodeTarget
from ..scenario import BackendSpec, MeetingSpec, Scenario, Schedule, build_scenario

#: Downlink profiles of the constrained participant: normal, then two
#: successively tighter constraints (the "reduced twice" of the figure).
NORMAL_DOWNLINK = LinkProfile(bandwidth_bps=50_000_000.0, propagation_delay_s=0.01)
FIRST_CONSTRAINT = LinkProfile(bandwidth_bps=1_300_000.0, propagation_delay_s=0.01, queue_limit_bytes=60_000)
SECOND_CONSTRAINT = LinkProfile(bandwidth_bps=1_000_000.0, propagation_delay_s=0.01, queue_limit_bytes=50_000)


@dataclass(frozen=True)
class RateAdaptationResult:
    """Time series and final state of the Figure 14 experiment."""

    send_frame_rates: Dict[str, List[Tuple[float, float]]]
    receive_frame_rates: Dict[str, List[Tuple[float, float]]]   # per origin stream at P3
    receive_bitrates_kbps: Dict[str, List[Tuple[float, float]]]  # per origin stream at P3
    decode_targets: Dict[Tuple[str, str], int]
    unconstrained_frame_rate_fps: float
    constrained_frame_rate_fps: float
    freezes_at_constrained: int

    def adapted(self) -> bool:
        """Whether the constrained participant was adapted below full rate."""
        return any(target < int(DecodeTarget.DT2) for target in self.decode_targets.values())


@dataclass
class RateAdaptationConfig:
    """Timing knobs of the experiment (defaults compress the paper's 400 s)."""

    warmup_s: float = 20.0
    first_constraint_at_s: float = 20.0
    second_constraint_at_s: float = 60.0
    total_duration_s: float = 120.0
    video_bitrate_bps: float = 650_000.0
    sample_interval_s: float = 2.0
    seed: int = 7


def run_rate_adaptation(config: Optional[RateAdaptationConfig] = None) -> RateAdaptationResult:
    """Run the three-party rate-adaptation experiment."""
    config = config or RateAdaptationConfig()
    # thresholds scaled to the stream bitrate: full quality needs ~80% of the
    # nominal bitrate, the mid quality ~40%
    thresholds = (config.video_bitrate_bps * 0.8, config.video_bitrate_bps * 0.4)
    # the "reduced twice" of the figure is a declarative two-phase link
    # schedule on the third participant's downlink
    scenario = Scenario(
        name="fig14-rate-adaptation",
        meetings=(
            MeetingSpec(participants=3, video_bitrate_bps=config.video_bitrate_bps),
        ),
        backend=BackendSpec(adaptation_thresholds_bps=thresholds),
        schedule=(
            Schedule()
            .set_link(config.first_constraint_at_s, 0, 2, downlink=FIRST_CONSTRAINT)
            .set_link(config.second_constraint_at_s, 0, 2, downlink=SECOND_CONSTRAINT)
        ),
        duration_s=config.total_duration_s,
        seed=config.seed,
    )
    with build_scenario(scenario) as testbed:
        clients = testbed.meeting("meeting-0")
        constrained = clients[2]

        receive_fps: Dict[str, List[Tuple[float, float]]] = {}
        receive_kbps: Dict[str, List[Tuple[float, float]]] = {}
        send_fps: Dict[str, List[Tuple[float, float]]] = {}
        last_bytes: Dict[int, int] = {}
        last_sample_time = 0.0

        ssrc_to_origin = {client.video_ssrc: client.config.participant_id for client in clients}

        def sample() -> None:
            nonlocal last_sample_time
            now = testbed.simulator.now
            for client in clients:
                send_fps.setdefault(client.config.participant_id, []).append((now, client.encoder.frame_rate))
            for ssrc, stream in constrained.video_receivers.items():
                origin = ssrc_to_origin.get(ssrc, f"ssrc-{ssrc}")
                receive_fps.setdefault(origin, []).append((now, stream.frame_rate(2.0, now)))
                elapsed = max(now - last_sample_time, 1e-9)
                delta_bytes = stream.bytes_received - last_bytes.get(ssrc, 0)
                last_bytes[ssrc] = stream.bytes_received
                receive_kbps.setdefault(origin, []).append((now, delta_bytes * 8.0 / 1000.0 / elapsed))
            last_sample_time = now

        # the constraints apply themselves (scenario schedule); this loop only
        # samples the time series between scheduled events
        elapsed = 0.0
        while elapsed < config.total_duration_s:
            testbed.run_for(config.sample_interval_s)
            elapsed += config.sample_interval_s
            sample()

        now = testbed.simulator.now
        sfu = testbed.sfu
        decode_targets = {
            (sender.config.participant_id, constrained.config.participant_id): int(
                sfu.agent.decode_target_for(  # type: ignore[attr-defined]
                    sender.config.participant_id, constrained.config.participant_id
                )
            )
            for sender in clients[:2]
        }
        unconstrained_rates = [
            stream.frame_rate(4.0, now) for stream in clients[0].video_receivers.values()
        ]
        constrained_rates = [
            stream.frame_rate(4.0, now) for stream in constrained.video_receivers.values()
        ]
        freezes = sum(stream.freeze_events for stream in constrained.video_receivers.values())

    return RateAdaptationResult(
        send_frame_rates=send_fps,
        receive_frame_rates=receive_fps,
        receive_bitrates_kbps=receive_kbps,
        decode_targets=decode_targets,
        unconstrained_frame_rate_fps=sum(unconstrained_rates) / max(len(unconstrained_rates), 1),
        constrained_frame_rate_fps=sum(constrained_rates) / max(len(constrained_rates), 1),
        freezes_at_constrained=freezes,
    )


def format_rate_adaptation(result: RateAdaptationResult) -> str:
    lines = [
        "SVC rate adaptation (three-party call, constrained third participant):",
        f"  decode targets towards constrained participant: {result.decode_targets}",
        f"  constrained participant receive rate: {result.constrained_frame_rate_fps:.1f} fps",
        f"  unconstrained participant receive rate: {result.unconstrained_frame_rate_fps:.1f} fps",
        f"  freezes at constrained participant: {result.freezes_at_constrained}",
    ]
    return "\n".join(lines)
