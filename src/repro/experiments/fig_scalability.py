"""Figures 15, 16, 17: Scallop's scalability vs. a 32-core software SFU.

These experiments are analytic: they evaluate the capacity formulas of
:mod:`repro.core.capacity` (which mirror §6.1/§6.2 of the paper and are
validated against the PRE/pipeline model by the test suite) across meeting
sizes and sender mixes, and report the paper's headline numbers:

* Figure 15 — the 7-210x improvement band over a 32-core server,
* Figure 16 — best/worst-case supported meetings for both systems, and
* Figure 17 — the per-design / per-bottleneck capacity lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.capacity import (
    DesignSpacePoint,
    ImprovementPoint,
    MeetingShape,
    MinMaxPoint,
    ReplicationDesign,
    RewriteVariant,
    ScallopCapacityModel,
    SoftwareSfuCapacityModel,
    figure15_series,
    figure16_series,
    figure17_series,
)

DEFAULT_PARTICIPANT_RANGE = [2, 3, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100]


@dataclass(frozen=True)
class ScalabilityHeadline:
    """The headline numbers quoted in the paper's abstract and §7.2."""

    improvement_min: float
    improvement_max: float
    nra_meetings: float
    ra_r_meetings: float
    ra_sr_meetings_10_participants: float
    two_party_meetings: float
    software_two_party_meetings: float
    software_10_party_meetings: float


def run_improvement_sweep(
    participant_range: Optional[Sequence[int]] = None,
) -> List[ImprovementPoint]:
    """Figure 15: improvement band over a 32-core server vs. meeting size."""
    return figure15_series(list(participant_range or DEFAULT_PARTICIPANT_RANGE))


def run_minmax_sweep(participant_range: Optional[Sequence[int]] = None) -> List[MinMaxPoint]:
    """Figure 16: best/worst-case supported meetings for Scallop and software."""
    return figure16_series(list(participant_range or DEFAULT_PARTICIPANT_RANGE))


def run_design_space_sweep(
    participant_range: Optional[Sequence[int]] = None,
) -> List[DesignSpacePoint]:
    """Figure 17: per-design and per-bottleneck capacity lines."""
    return figure17_series(list(participant_range or DEFAULT_PARTICIPANT_RANGE))


def headline_numbers() -> ScalabilityHeadline:
    """The scalar results the paper quotes (128K / 42.7K / 4.3K / 533K / 7-210x)."""
    scallop = ScallopCapacityModel()
    software = SoftwareSfuCapacityModel()
    ten_party = MeetingShape(participants=10)
    two_party = MeetingShape(participants=2)
    improvements = run_improvement_sweep()
    return ScalabilityHeadline(
        improvement_min=min(point.improvement_min for point in improvements),
        improvement_max=max(point.improvement_max for point in improvements),
        nra_meetings=scallop.max_meetings_nra(ten_party),
        ra_r_meetings=scallop.max_meetings_ra_r(ten_party),
        ra_sr_meetings_10_participants=scallop.max_meetings_ra_sr(ten_party),
        two_party_meetings=scallop.max_meetings_two_party(two_party),
        software_two_party_meetings=software.max_meetings(two_party),
        software_10_party_meetings=software.max_meetings(ten_party),
    )


def format_headline(headline: ScalabilityHeadline) -> str:
    return "\n".join(
        [
            "Scallop scalability headlines:",
            f"  NRA meetings:                {headline.nra_meetings:,.0f} (paper: 128K)",
            f"  RA-R meetings:               {headline.ra_r_meetings:,.0f} (paper: 42.7K)",
            f"  RA-SR meetings (10 parts):   {headline.ra_sr_meetings_10_participants:,.0f} (paper: 4.3K)",
            f"  two-party meetings:          {headline.two_party_meetings:,.0f} (paper: 533K)",
            f"  software two-party meetings: {headline.software_two_party_meetings:,.0f} (paper: 4.8K)",
            f"  software 10-party meetings:  {headline.software_10_party_meetings:,.0f} (paper: 192)",
            f"  improvement range:           {headline.improvement_min:.1f}x - {headline.improvement_max:.0f}x"
            " (paper: 7-210x)",
        ]
    )


@dataclass(frozen=True)
class ShardScalingPoint:
    """Measured dataplane throughput at one shard count, with the scaling
    efficiency relative to perfect linear speedup over k=1."""

    n_shards: int
    pps: float
    speedup: float
    efficiency: float


def run_shard_scaling_sweep(
    shard_counts: Sequence[int] = (1, 2, 4),
    num_meetings: int = 50,
    executor: str = "serial",
    repeats: int = 3,
) -> List[ShardScalingPoint]:
    """Shard-count scaling of the behavioural dataplane (ROADMAP item 1).

    Complements the analytic capacity lines above with a *measured* series:
    the same 50-meeting ingress replayed through
    :class:`~repro.dataplane.sharding.ShardedScallopPipeline` at increasing
    shard counts.  Under the in-process ``serial`` executor the efficiency
    column quantifies the GIL bound (flows are share-nothing, but CPython
    executes the shards sequentially); the ``process`` executor reports what
    the escape hatch buys once per-packet work outweighs serialization.
    """
    from .batch_throughput import run_shard_throughput_sweep

    points = run_shard_throughput_sweep(
        shard_counts, num_meetings=num_meetings, executor=executor, repeats=repeats
    )
    baseline = points[0].pps if points else 0.0
    return [
        ShardScalingPoint(
            n_shards=point.n_shards,
            pps=point.pps,
            speedup=point.pps / baseline if baseline else 0.0,
            efficiency=(point.pps / baseline) / point.n_shards if baseline else 0.0,
        )
        for point in points
    ]


def format_shard_scaling(points: Sequence[ShardScalingPoint]) -> str:
    lines = [f"{'shards':>7}{'pps':>14}{'speedup':>9}{'efficiency':>11}"]
    for point in points:
        lines.append(
            f"{point.n_shards:>7}{point.pps:>14,.0f}{point.speedup:>8.2f}x{point.efficiency:>10.2f}"
        )
    return "\n".join(lines)


def format_design_space(points: Sequence[DesignSpacePoint]) -> str:
    lines = [
        f"{'N':>5}{'NRA':>12}{'RA-R':>12}{'RA-SR':>12}{'S-LM':>12}{'S-LR':>12}{'BW':>12}{'SW':>12}"
    ]
    for point in points:
        lines.append(
            f"{point.participants:>5}{point.nra:>12.0f}{point.ra_r:>12.0f}{point.ra_sr:>12.0f}"
            f"{point.s_lm:>12.0f}{point.s_lr:>12.0f}{point.bandwidth:>12.0f}{point.software:>12.1f}"
        )
    return "\n".join(lines)
