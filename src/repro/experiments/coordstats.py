"""Amdahl stage profile for the sharded coordinator (`CoordinatorStats`).

The sharded engine's batch loop has a fixed stage structure: partition the
burst by flow, (process executor only) encode each partition into its packed
shard blob, dispatch the partitions to the shard backend, (process executor
only) replay the workers' rewrite descriptions into egress datagrams, and
reassemble the per-shard results into input order.  Partition, encode,
replay, and reassemble run on the coordinator thread regardless of the
executor — they are the *serial* fraction that Amdahl's law says bounds any
speedup from adding shards.

:class:`CoordinatorStats` accumulates per-batch wall time of each stage.  It
lives in the experiments namespace on purpose: the clock
(``time.perf_counter_ns``) is measurement apparatus, not model behaviour, and
the architecture checker exempts ``repro.experiments`` from the determinism
rule.  The engine never calls the clock itself — it goes through
``stats.clock()``, the sanctioned accounting surface, and only when a profile
object is attached (``engine.coordinator_stats``); the default data path has
no timing instrumentation at all.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..obs.registry import BATCH_NS_BUCKETS, Histogram

#: Stage names in coordinator-loop order (also the display order).
STAGES = ("partition", "encode", "dispatch", "replay", "reassemble")


class CoordinatorStats:
    """Per-stage wall-time accumulator for the sharded coordinator loop.

    ``dispatch_ns`` spans the whole backend call, so for the process executor
    it *contains* ``encode_ns`` and ``replay_ns`` (which run on the
    coordinator thread inside that window).  :meth:`serial_fraction` accounts
    for the overlap.
    """

    __slots__ = (
        "clock",
        "batches",
        "packets",
        "partition_ns",
        "encode_ns",
        "dispatch_ns",
        "replay_ns",
        "reassemble_ns",
        "stage_hists",
    )

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self.clock = clock
        self.batches = 0
        self.packets = 0
        self.partition_ns = 0
        self.encode_ns = 0
        self.dispatch_ns = 0
        self.replay_ns = 0
        self.reassemble_ns = 0
        #: Per-stage per-batch duration distributions behind the scalar
        #: totals (one bisect per batch per stage when profiling is on).
        self.stage_hists: Dict[str, Histogram] = {
            stage: Histogram(BATCH_NS_BUCKETS) for stage in STAGES
        }

    def note_batch(self, packets: int) -> None:
        """Count one coordinated batch of ``packets`` ingress packets."""
        self.batches += 1
        self.packets += packets

    def note_stage(self, stage: str, ns: int) -> None:
        """Charge ``ns`` of coordinator wall time to ``stage``: adds to the
        scalar total (the Amdahl arithmetic reads those) and observes the
        per-batch histogram (the telemetry bus reads that)."""
        setattr(self, stage + "_ns", getattr(self, stage + "_ns") + ns)
        self.stage_hists[stage].observe(float(ns))

    # ------------------------------------------------------------------ derived

    def stage_ns(self) -> Dict[str, int]:
        return {
            "partition": self.partition_ns,
            "encode": self.encode_ns,
            "dispatch": self.dispatch_ns,
            "replay": self.replay_ns,
            "reassemble": self.reassemble_ns,
        }

    def serial_ns(self) -> int:
        """Coordinator-thread (non-parallelizable) time: partition and
        reassemble, plus the codec passes that run inside the dispatch
        window."""
        return self.partition_ns + self.reassemble_ns + self.encode_ns + self.replay_ns

    def total_ns(self) -> int:
        """Wall time of the whole coordinated loop (dispatch already
        contains the codec passes, so they are not added again)."""
        return self.partition_ns + self.dispatch_ns + self.reassemble_ns

    def serial_fraction(self) -> Optional[float]:
        """Amdahl serial-fraction estimate of the coordinator loop, or
        ``None`` before any batch was timed."""
        total = self.total_ns()
        if total <= 0:
            return None
        return self.serial_ns() / total

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready stage profile (the ``"coordinator"`` bench key)."""
        packets = self.packets
        stage_ns = self.stage_ns()
        per_packet = {
            name: (ns / packets if packets else 0.0) for name, ns in stage_ns.items()
        }
        return {
            "batches": self.batches,
            "packets": packets,
            "stage_ns": stage_ns,
            "stage_ns_per_packet": per_packet,
            "serial_ns": self.serial_ns(),
            "total_ns": self.total_ns(),
            "serial_fraction": self.serial_fraction(),
        }

    def snapshot_series(self, prefix: str = "repro.coord.") -> Dict[str, Dict[str, object]]:
        """Bus-ready series under ``repro.coord.*``: scalar stage totals as
        counters plus the per-batch stage-duration histograms."""
        series: Dict[str, Dict[str, object]] = {
            prefix + "batches": {"type": "counter", "value": self.batches},
            prefix + "packets": {"type": "counter", "value": self.packets},
        }
        for name, ns in self.stage_ns().items():
            series[prefix + name + "_ns"] = {"type": "counter", "value": ns}
        for name, histogram in self.stage_hists.items():
            series[prefix + "stage_ns." + name] = histogram.as_dict()
        return series

    def format_table(self) -> str:
        """Human-readable stage table (the ``--profile`` output)."""
        packets = self.packets
        lines = [
            f"coordinator stage profile ({self.batches} batches, {packets} packets)",
            f"{'stage':<12}{'total ms':>12}{'ns/packet':>12}",
        ]
        for name, ns in self.stage_ns().items():
            per_packet = ns / packets if packets else 0.0
            lines.append(f"{name:<12}{ns / 1e6:>12.3f}{per_packet:>12.0f}")
        serial = self.serial_fraction()
        serial_text = "n/a" if serial is None else f"{serial:.3f}"
        lines.append(f"{'serial fraction (Amdahl)':<24}{serial_text:>12}")
        return "\n".join(lines)
