"""Batched vs. per-packet data-plane throughput across concurrent meetings.

The batch fast path (:meth:`~repro.dataplane.pipeline.ScallopPipeline.process_batch`)
exists because per-packet operations on independent streams commute: a burst
can be processed as a batch with byte-identical outputs while the Python-level
overhead (parsing, table lookup chains, per-replica dict copies) is amortized.
This module quantifies that claim: it configures N concurrent meetings on one
pipeline, replays identical AV1 ingress through both paths, and reports
packets/second for each.

Timing hygiene: the replica datagrams allocated per run are enough to trigger
generational GC pauses mid-measurement, so collection is deferred while the
clock runs and both paths take the best of ``repeats`` passes.
"""

from __future__ import annotations

import gc

# this benchmark measures the packed transport *against* pickled object
# graphs, so the pickle use here is the experiment, not a hot-path leak
import pickle  # archlint: ignore[zero-pickle]
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataplane.pipeline import (
    ForwardingMode,
    PipelineCounters,
    ReplicaTarget,
    ScallopPipeline,
    StreamForwardingEntry,
)
from ..dataplane.pre import L2Port
from ..dataplane.rebalance import RebalancerConfig
from ..dataplane.shardcodec import encode_ingress_batch, encode_result_batch
from ..dataplane.sharding import ShardedScallopPipeline, flow_shard
from ..netsim.datagram import Address, Datagram
from ..rtp.srtp import SrtpProfile
from ..rtp.wire import PacketView
from ..webrtc.encoder import RtpPacketizer, SvcEncoder
from .coordstats import CoordinatorStats

SFU_ADDRESS = Address("10.0.0.1", 5000)

#: Fixed master key for benchmark SRTP profiles (determinism across runs).
BENCH_SRTP_KEY = b"scallop-bench-master"


def gil_enabled() -> bool:
    """Whether this interpreter runs with the GIL engaged.

    ``sys._is_gil_enabled`` exists on 3.13+ (PEP 703); older interpreters
    always hold the GIL.  Every parallelism benchmark point records this —
    thread-executor numbers from a GIL build and a free-threaded build are
    different experiments and must never be compared as a regression.
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


@dataclass(frozen=True)
class BatchThroughputPoint:
    """One sweep point: N meetings, throughput of both processing paths."""

    num_meetings: int
    num_packets: int
    per_packet_pps: float
    batched_pps: float

    @property
    def speedup(self) -> float:
        return self.batched_pps / self.per_packet_pps


def build_meeting_pipeline(
    num_meetings: int, participants: int = 8, pipeline=None
) -> Tuple[ScallopPipeline, List[Tuple[Address, int]]]:
    """A pipeline with ``num_meetings`` replicated meetings, one active video
    sender each (the campus trace's typical meeting shape); returns the
    pipeline and the (sender address, ssrc) pairs.  Pass ``pipeline`` to
    configure a pre-built engine (e.g. a sharded one) instead of a fresh
    :class:`ScallopPipeline`."""
    if pipeline is None:
        pipeline = ScallopPipeline(SFU_ADDRESS)
    senders: List[Tuple[Address, int]] = []
    for meeting in range(num_meetings):
        mgid = pipeline.pre.create_tree()
        addresses = [
            Address(f"10.{1 + meeting // 200}.{meeting % 200}.{index + 2}", 6000 + index)
            for index in range(participants)
        ]
        for rid, address in enumerate(addresses, start=1):
            pipeline.pre.add_node(
                mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True
            )
            pipeline.install_replica_target(
                mgid, rid, ReplicaTarget(address=address, participant_id=f"m{meeting}-p{rid}")
            )
        ssrc = 10_000 + meeting
        pipeline.install_stream(
            (addresses[0], ssrc),
            StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE,
                meeting_id=f"meeting-{meeting}",
                sender=addresses[0],
                mgid=mgid,
                rid=1,
                l2_xid=1,
            ),
        )
        senders.append((addresses[0], ssrc))
    return pipeline, senders


def media_ingress(
    senders: Sequence[Tuple[Address, int]], frames: int = 12, wire_native: bool = False
) -> List[Datagram]:
    """AV1 L1T3 ingress: every sender contributes ``frames`` encoded frames.

    ``wire_native=True`` encodes each packet once into a packed
    :class:`~repro.rtp.wire.PacketView` buffer (the representation a
    wire-native sender emits), exercising the pipeline's zero-object path.
    """
    traffic: List[Datagram] = []
    for address, ssrc in senders:
        encoder = SvcEncoder(target_bitrate_bps=2_200_000, seed=ssrc)
        packetizer = RtpPacketizer(ssrc=ssrc, seed=ssrc)
        for index in range(frames):
            for packet in packetizer.packetize(encoder.next_frame(index / 30)):
                payload = PacketView.from_packet(packet) if wire_native else packet
                traffic.append(Datagram(src=address, dst=SFU_ADDRESS, payload=payload))
    return traffic


def measure_point(
    num_meetings: int,
    participants: int = 8,
    frames: int = 12,
    repeats: int = 3,
) -> BatchThroughputPoint:
    """Measure one sweep point, best-of-``repeats`` per path with GC deferred."""
    best_per_packet = float("inf")
    best_batched = float("inf")
    num_packets = 0
    for _ in range(repeats):
        reference, senders = build_meeting_pipeline(num_meetings, participants)
        batched, _ = build_meeting_pipeline(num_meetings, participants)
        traffic = media_ingress(senders, frames)
        num_packets = len(traffic)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            for datagram in traffic:
                reference.process(datagram)
            best_per_packet = min(best_per_packet, time.perf_counter() - start)

            start = time.perf_counter()
            batched.process_batch(traffic)
            best_batched = min(best_batched, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return BatchThroughputPoint(
        num_meetings=num_meetings,
        num_packets=num_packets,
        per_packet_pps=num_packets / best_per_packet,
        batched_pps=num_packets / best_batched,
    )


def run_batch_throughput_sweep(
    meeting_counts: Sequence[int] = (1, 5, 10, 25, 50),
    participants: int = 8,
    frames: int = 12,
    repeats: int = 3,
) -> List[BatchThroughputPoint]:
    """Sweep the meeting count and measure both paths at every point."""
    return [
        measure_point(count, participants=participants, frames=frames, repeats=repeats)
        for count in meeting_counts
    ]


@dataclass(frozen=True)
class ShardThroughputPoint:
    """One shard-sweep point: the sharded engine at ``n_shards`` on a fixed
    multi-meeting workload."""

    num_meetings: int
    n_shards: int
    executor: str
    num_packets: int
    pps: float
    #: Ingress representation: "object" (RtpPacket dataclasses) or "wire"
    #: (packed PacketView buffers).
    ingress: str = "object"
    #: Per-shard skew from the final measured run (groundwork for ROADMAP's
    #: skew-aware rebalancing): packets each shard processed and its
    #: stream-tracker occupancy attribution.
    shard_packets: Tuple[int, ...] = ()
    shard_occupancy: Tuple[float, ...] = ()


def measure_shard_point(
    n_shards: int,
    num_meetings: int = 50,
    participants: int = 8,
    frames: int = 12,
    repeats: int = 3,
    executor: str = "serial",
    wire_native: bool = False,
    warmup_packets: int = 64,
) -> ShardThroughputPoint:
    """Measure ``process_batch`` throughput of the sharded engine at one
    shard count (best-of-``repeats`` with GC deferred, like
    :func:`measure_point`).

    ``warmup_packets`` ingress packets run before the clock starts so every
    backend is measured at steady state: the process executor spawns its
    per-shard worker pools and ships the (one-time) control-plane snapshot on
    first contact, costs that belong to meeting setup rather than per-batch
    forwarding.
    """
    best = float("inf")
    num_packets = 0
    shard_packets: Tuple[int, ...] = ()
    shard_occupancy: Tuple[float, ...] = ()
    for _ in range(repeats):
        engine = ShardedScallopPipeline(SFU_ADDRESS, n_shards=n_shards, executor=executor)
        try:
            engine, senders = build_meeting_pipeline(num_meetings, participants, pipeline=engine)
            traffic = media_ingress(senders, frames, wire_native=wire_native)
            num_packets = len(traffic)
            if warmup_packets:
                # replaying a slice is safe here because this workload
                # installs no sequence rewriters (nothing is stateful across
                # the replay); zero the skew tallies afterwards so the
                # shard_load() rows cover exactly the timed run
                engine.process_batch(traffic[:warmup_packets])
                for shard in engine.shards:
                    shard.counters = PipelineCounters()
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                engine.process_batch(traffic)
                best = min(best, time.perf_counter() - start)
            finally:
                if gc_was_enabled:
                    gc.enable()
            load = engine.shard_load()
            shard_packets = tuple(int(row["data_plane_packets"]) for row in load)
            shard_occupancy = tuple(row["stream_tracker_occupancy"] for row in load)
        finally:
            engine.close()
    return ShardThroughputPoint(
        num_meetings=num_meetings,
        n_shards=n_shards,
        executor=executor,
        num_packets=num_packets,
        pps=num_packets / best,
        ingress="wire" if wire_native else "object",
        shard_packets=shard_packets,
        shard_occupancy=shard_occupancy,
    )


def run_shard_throughput_sweep(
    shard_counts: Sequence[int] = (1, 2, 4),
    num_meetings: int = 50,
    participants: int = 8,
    frames: int = 12,
    repeats: int = 3,
    executor: str = "serial",
    wire_native: bool = False,
) -> List[ShardThroughputPoint]:
    """Sweep shard counts on a fixed workload.

    With the default ``serial`` executor this measures the *cost* of
    partitioning: all shards execute on one interpreter under one GIL, so
    throughput is flat-to-slightly-lower as k grows — the point of the sweep
    is to track that overhead across PRs and to catch regressions in the
    partition/reassembly path.  The ``process`` executor is the parallel
    escape hatch, fed by the zero-pickle packed shard transport; pass
    ``wire_native=True`` to feed either executor packed ingress buffers.
    """
    return [
        measure_shard_point(
            k,
            num_meetings=num_meetings,
            participants=participants,
            frames=frames,
            repeats=repeats,
            executor=executor,
            wire_native=wire_native,
        )
        for k in shard_counts
    ]


@dataclass(frozen=True)
class ObsOverheadPoint:
    """Throughput of the k=1 serial engine bare vs with the telemetry plane
    armed at the default 1-in-``sample_rate`` flow tracing."""

    num_meetings: int
    num_packets: int
    sample_rate: int
    bare_pps: float
    traced_pps: float

    @property
    def overhead(self) -> float:
        """Fractional slowdown tracing costs (0.03 = 3% fewer packets/sec)."""
        return self.bare_pps / self.traced_pps - 1.0


def measure_obs_overhead(
    num_meetings: int = 50,
    participants: int = 8,
    frames: int = 12,
    repeats: int = 5,
    sample_rate: int = 64,
) -> ObsOverheadPoint:
    """Measure what arming ``repro.obs`` costs the k=1 serial hot path.

    Both engines (bare, and traced at the default production 1-in-
    ``sample_rate`` flow sampling) are built once and fully warmed with one
    untimed pass over the whole burst -- the comparison targets the
    *steady-state* per-packet cost (every packet pays one cached
    sampling-decision slot load, sampled flows additionally pay integer
    span reconstruction), not flow-cache fill.  Then ``repeats`` timed
    batches per side run strictly interleaved (order alternating per round,
    GC deferred around the whole timed region) and each side keeps its
    best: interleaving means machine drift lands on both sides alike, and
    best-of-N over *warm* repeats converges to each side's true floor,
    where a cold-engine single-batch-per-side comparison swings +-10% on a
    busy host.
    """
    from ..obs.hooks import ObsConfig

    engines = {}
    traffics = {}
    best = {False: float("inf"), True: float("inf")}
    try:
        for traced in (False, True):
            obs = ObsConfig(trace_sample_rate=sample_rate) if traced else None
            engine = ShardedScallopPipeline(SFU_ADDRESS, n_shards=1, obs=obs)
            engines[traced] = engine
            engine, senders = build_meeting_pipeline(
                num_meetings, participants, pipeline=engine
            )
            traffic = media_ingress(senders, frames)
            traffics[traced] = traffic
            engine.process_batch(traffic)  # untimed warm pass: fills caches
            for shard in engine.shards:
                shard.counters = PipelineCounters()
        num_packets = len(traffics[False])
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for repeat in range(repeats):
                order = (False, True) if repeat % 2 == 0 else (True, False)
                for traced in order:
                    engine = engines[traced]
                    traffic = traffics[traced]
                    start = time.perf_counter()
                    engine.process_batch(traffic)
                    elapsed = time.perf_counter() - start
                    best[traced] = min(best[traced], elapsed)
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        for engine in engines.values():
            engine.close()
    return ObsOverheadPoint(
        num_meetings=num_meetings,
        num_packets=num_packets,
        sample_rate=sample_rate,
        bare_pps=num_packets / best[False],
        traced_pps=num_packets / best[True],
    )


def measure_coordinator_profile(
    n_shards: int = 4,
    num_meetings: int = 50,
    participants: int = 8,
    frames: int = 12,
    executors: Sequence[str] = ("serial", "process"),
    wire_native: bool = True,
    warmup_packets: int = 64,
) -> Dict[str, Dict[str, object]]:
    """Amdahl stage profile of the sharded coordinator loop, per executor.

    Attaches a :class:`~repro.experiments.coordstats.CoordinatorStats` to a
    fresh engine, runs the standard multi-meeting burst once (after warmup,
    GC deferred like every timing here), and returns each executor's
    ``as_dict()`` stage breakdown — partition / encode / dispatch / replay /
    reassemble ns, per-packet rates, and the serial-fraction estimate.  The
    serial executor has no codec stages (encode/replay stay 0); the process
    executor shows the full five-stage split.
    """
    profiles: Dict[str, Dict[str, object]] = {}
    for executor in executors:
        engine = ShardedScallopPipeline(SFU_ADDRESS, n_shards=n_shards, executor=executor)
        try:
            engine, senders = build_meeting_pipeline(
                num_meetings, participants, pipeline=engine
            )
            traffic = media_ingress(senders, frames, wire_native=wire_native)
            if warmup_packets:
                engine.process_batch(traffic[:warmup_packets])
            stats = CoordinatorStats()
            engine.coordinator_stats = stats
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                engine.process_batch(traffic)
            finally:
                if gc_was_enabled:
                    gc.enable()
            profiles[executor] = stats.as_dict()
        finally:
            engine.close()
    return profiles


# --------------------------------------------------------------------------- executor parallelism / Amdahl crossover


@dataclass(frozen=True)
class ParallelismPoint:
    """One executor-matrix point: an executor at ``n_shards`` on wire-native
    ingress, optionally under SRTP-grade per-packet work."""

    executor: str
    n_shards: int
    #: 0 = plain wire-native ingress; >= 1 = SRTP profile with that many
    #: keystream-derivation rounds per packet (the per-packet work knob).
    srtp_rounds: int
    num_packets: int
    pps: float
    #: GIL regime the point was measured under (see :func:`gil_enabled`).
    gil_enabled: bool


def protect_media_ingress(traffic: Sequence[Datagram], profile: SrtpProfile) -> List[Datagram]:
    """What wire-native senders emit under SRTP: every packed buffer
    protected with the ingress session keys (tag appended, payload XORed)."""
    return [
        Datagram(
            src=datagram.src,
            dst=datagram.dst,
            payload=PacketView(profile.protect_ingress(datagram.payload)),
        )
        for datagram in traffic
    ]


def measure_parallelism_point(
    executor: str,
    n_shards: int,
    srtp_rounds: int = 0,
    num_meetings: int = 12,
    participants: int = 6,
    frames: int = 10,
    repeats: int = 2,
    warmup_packets: int = 64,
) -> ParallelismPoint:
    """Measure one executor-matrix point on wire-native ingress.

    Same hygiene as :func:`measure_shard_point` (fresh engine per repeat,
    warmup before the clock, GC deferred, best-of-``repeats``); the workload
    is always wire-native so the plain-vs-srtp delta is purely the per-packet
    crypto work, not a representation change.
    """
    profile = SrtpProfile(BENCH_SRTP_KEY, rounds=srtp_rounds) if srtp_rounds else None
    best = float("inf")
    num_packets = 0
    for _ in range(repeats):
        engine = ShardedScallopPipeline(
            SFU_ADDRESS, n_shards=n_shards, executor=executor, srtp=profile
        )
        try:
            engine, senders = build_meeting_pipeline(num_meetings, participants, pipeline=engine)
            traffic = media_ingress(senders, frames, wire_native=True)
            if profile is not None:
                traffic = protect_media_ingress(traffic, profile)
            num_packets = len(traffic)
            if warmup_packets:
                engine.process_batch(traffic[:warmup_packets])
                for shard in engine.shards:
                    shard.counters = PipelineCounters()
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                engine.process_batch(traffic)
                best = min(best, time.perf_counter() - start)
            finally:
                if gc_was_enabled:
                    gc.enable()
        finally:
            engine.close()
    return ParallelismPoint(
        executor=executor,
        n_shards=n_shards,
        srtp_rounds=srtp_rounds,
        num_packets=num_packets,
        pps=num_packets / best,
        gil_enabled=gil_enabled(),
    )


def run_parallelism_matrix(
    executors: Sequence[str] = ("serial", "thread", "process"),
    shard_counts: Sequence[int] = (1, 4),
    srtp_levels: Sequence[int] = (0, 1),
    num_meetings: int = 12,
    participants: int = 6,
    frames: int = 10,
    repeats: int = 2,
) -> List[ParallelismPoint]:
    """The executor matrix: {serial, thread, process} x k x {plain, srtp}.

    On a GIL interpreter the thread rows are expected to sit at-or-below
    serial (the executor is correct but not parallel); on a free-threaded
    build they are where flow sharding finally pays inside one process.
    Every point records its GIL regime so the two cases are never conflated.
    """
    return [
        measure_parallelism_point(
            executor,
            k,
            srtp_rounds=rounds,
            num_meetings=num_meetings,
            participants=participants,
            frames=frames,
            repeats=repeats,
        )
        for executor in executors
        for k in shard_counts
        for rounds in srtp_levels
    ]


def measure_parallelism_crossover(
    rounds_levels: Sequence[int] = (1, 2, 4, 8),
    n_shards: int = 4,
    num_meetings: int = 12,
    participants: int = 6,
    frames: int = 10,
    repeats: int = 2,
    margin: float = 1.05,
) -> Dict[str, object]:
    """Locate the Amdahl crossover: the srtp work level at which thread-k
    sharding beats the serial engine.

    Sweeps ``rounds_levels`` (keystream-derivation rounds per packet — pure
    CPU work, deterministic at every fixed level) and compares
    serial-k1 against thread-``n_shards`` at each level.  ``crossover_rounds``
    is the first level whose thread/serial ratio clears ``margin``, or
    ``None`` if the sweep never crosses — the expected outcome under a GIL,
    where added per-packet work scales both engines equally because the
    thread executor cannot overlap it.  The margin exists exactly for that
    regime: GIL-bound ratios hover around 1.0 (the executor overhead
    amortizes as srtp work grows) and scheduler jitter can nudge a level a
    percent or two past parity, which is not parallelism paying — a genuine
    free-threaded crossover clears the margin by a wide margin.  On a
    free-threaded build the crossover is the headline number: the work level
    past which parallelism pays.
    """
    levels: List[Dict[str, object]] = []
    crossover: Optional[int] = None
    for rounds in rounds_levels:
        serial = measure_parallelism_point(
            "serial", 1, srtp_rounds=rounds, num_meetings=num_meetings,
            participants=participants, frames=frames, repeats=repeats,
        )
        threaded = measure_parallelism_point(
            "thread", n_shards, srtp_rounds=rounds, num_meetings=num_meetings,
            participants=participants, frames=frames, repeats=repeats,
        )
        ratio = threaded.pps / serial.pps if serial.pps else 0.0
        levels.append(
            {
                "srtp_rounds": rounds,
                "serial_k1_pps": round(serial.pps),
                f"thread_k{n_shards}_pps": round(threaded.pps),
                "ratio": round(ratio, 3),
                "gil_enabled": serial.gil_enabled and threaded.gil_enabled,
            }
        )
        if crossover is None and ratio > margin:
            crossover = rounds
    return {
        "n_shards": n_shards,
        "rounds_levels": list(rounds_levels),
        "margin": margin,
        "levels": levels,
        "crossover_rounds": crossover,
    }


def format_parallelism_matrix(points: Sequence[ParallelismPoint]) -> str:
    lines = [
        f"{'executor':>9} {'shards':>7} {'srtp':>5} {'packets':>9} {'pps':>13} {'gil':>5}"
    ]
    for point in points:
        srtp = f"r={point.srtp_rounds}" if point.srtp_rounds else "off"
        lines.append(
            f"{point.executor:>9} {point.n_shards:>7} {srtp:>5} {point.num_packets:>9} "
            f"{point.pps:>13,.0f} {'on' if point.gil_enabled else 'OFF':>5}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- skewed workloads / rebalancing


def zipf_weights(count: int, exponent: float = 0.9) -> List[float]:
    """Zipf-style popularity weights: meeting ``i`` gets ``1 / (i+1)^s``."""
    return [1.0 / (rank + 1) ** exponent for rank in range(count)]


def zipf_frames(
    count: int, base_frames: int = 18, exponent: float = 1.2, floor: int = 1
) -> List[int]:
    """Frames per batch for each meeting under a Zipf activity distribution
    (hottest meeting sends ``base_frames`` frames per batch, the tail decays
    as ``1/rank^s`` down to ``floor``)."""
    weights = zipf_weights(count, exponent)
    return [max(floor, round(base_frames * weight / weights[0])) for weight in weights]


def build_skewed_meeting_pipeline(
    num_meetings: int,
    n_shards: int,
    participants: int = 8,
    colocate_hot: int = 4,
    pipeline=None,
    participants_by_meeting: Optional[Sequence[int]] = None,
) -> Tuple[object, List[Tuple[Address, int]]]:
    """A meeting population whose hottest senders collide onto one shard.

    Same shape as :func:`build_meeting_pipeline`, but the ``colocate_hot``
    hottest meetings get sender SSRCs chosen (deterministically, by scanning
    candidates) so the default CRC32 placement puts them all on shard 0 —
    the adversarial-but-realistic hash collision ROADMAP motivates ("a few
    hot senders pin one shard").  Combined with Zipf activity this yields a
    static max/mean packet skew well above 2x at k=4, which is the workload
    the rebalancer is benchmarked (and CI-gated) against.
    """
    if pipeline is None:
        pipeline = ScallopPipeline(SFU_ADDRESS)
    senders: List[Tuple[Address, int]] = []
    for meeting in range(num_meetings):
        mgid = pipeline.pre.create_tree()
        size = (
            participants_by_meeting[meeting]
            if participants_by_meeting is not None
            else participants
        )
        addresses = [
            Address(f"10.{1 + meeting // 200}.{meeting % 200}.{index + 2}", 6000 + index)
            for index in range(size)
        ]
        for rid, address in enumerate(addresses, start=1):
            pipeline.pre.add_node(
                mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True
            )
            pipeline.install_replica_target(
                mgid, rid, ReplicaTarget(address=address, participant_id=f"m{meeting}-p{rid}")
            )
        ssrc = 10_000 + meeting * 50
        if meeting < colocate_hot:
            while flow_shard(addresses[0], ssrc, n_shards) != 0:
                ssrc += 1
        pipeline.install_stream(
            (addresses[0], ssrc),
            StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE,
                meeting_id=f"meeting-{meeting}",
                sender=addresses[0],
                mgid=mgid,
                rid=1,
                l2_xid=1,
            ),
        )
        senders.append((addresses[0], ssrc))
    return pipeline, senders


def skewed_media_ingress(
    senders: Sequence[Tuple[Address, int]],
    frames_by_sender: Sequence[int],
) -> List[Datagram]:
    """One batch of Zipf-skewed AV1 ingress: sender ``i`` contributes
    ``frames_by_sender[i]`` frames.  Deterministic per sender, so replaying
    it models a steady-state load epoch (safe because the skewed workloads
    install no sequence rewriters — nothing is stateful across the replay)."""
    traffic: List[Datagram] = []
    for (address, ssrc), frames in zip(senders, frames_by_sender):
        encoder = SvcEncoder(target_bitrate_bps=2_200_000, seed=ssrc)
        packetizer = RtpPacketizer(ssrc=ssrc, seed=ssrc)
        for index in range(frames):
            for packet in packetizer.packetize(encoder.next_frame(index / 30)):
                traffic.append(Datagram(src=address, dst=SFU_ADDRESS, payload=packet))
    return traffic


@dataclass(frozen=True)
class RebalancePoint:
    """One skewed-sweep point: static CRC32 placement vs. the closed
    telemetry -> policy -> migration loop on the identical workload."""

    n_shards: int
    num_meetings: int
    num_packets: int
    batches: int
    #: Final-batch max/mean per-shard packet skew under static CRC32.
    skew_static: float
    #: Same workload and batch with the rebalancer armed.
    skew_rebalanced: float
    migrations: int
    shard_packets_static: Tuple[int, ...]
    shard_packets_rebalanced: Tuple[int, ...]

    @property
    def skew_reduction(self) -> float:
        """How many times the rebalancer cut the max/mean packet skew."""
        return self.skew_static / self.skew_rebalanced if self.skew_rebalanced else 0.0


def _final_batch_shard_packets(
    engine: ShardedScallopPipeline,
    senders: Sequence[Tuple[Address, int]],
    frames_by_sender: Sequence[int],
    batches: int,
) -> Tuple[Tuple[int, ...], int]:
    """Replay ``batches`` identical skewed batches (a steady-state load
    epoch each); return the per-shard packet counts of the final batch alone
    (counters zeroed before it) plus the total packets per batch."""
    num_packets = 0
    traffic = skewed_media_ingress(senders, frames_by_sender)
    num_packets = len(traffic)
    for batch_index in range(batches):
        if batch_index == batches - 1:
            for shard in engine.shards:
                shard.counters = PipelineCounters()
        engine.process_batch(traffic)
    return (
        tuple(int(row["data_plane_packets"]) for row in engine.shard_load()),
        num_packets,
    )


def measure_rebalance_point(
    n_shards: int = 4,
    num_meetings: int = 50,
    participants: int = 8,
    batches: int = 24,
    base_frames: int = 18,
    zipf_exponent: float = 1.2,
    colocate_hot: int = 14,
    config: Optional[RebalancerConfig] = None,
) -> RebalancePoint:
    """Measure the rebalancer's skew cut on a Zipf-skewed hot-sender workload.

    Two runs over byte-identical traffic: a static-CRC32 engine and one with
    :meth:`~repro.dataplane.sharding.ShardedScallopPipeline.enable_rebalancing`
    armed (short epochs so the loop converges within ``batches``).  Both
    figures are the max/mean per-shard packet ratio of the *final* batch —
    i.e. after the control loop has converged — so the point is deterministic
    (packet counts, not timings) and safe to gate CI on.
    """
    if config is None:
        # short epochs + a tight target so the loop converges (and bottoms
        # out) well within the measured window; budget 6 keeps per-epoch
        # churn bounded while still draining a 14-hot-flow pileup
        config = RebalancerConfig(
            epoch_batches=2, trigger_ratio=1.15, target_ratio=1.05, migration_budget=6
        )
    frames_by_sender = zipf_frames(num_meetings, base_frames, zipf_exponent)

    static_engine, senders = build_skewed_meeting_pipeline(
        num_meetings,
        n_shards,
        participants,
        colocate_hot=colocate_hot,
        pipeline=ShardedScallopPipeline(SFU_ADDRESS, n_shards=n_shards, executor="serial"),
    )
    static_packets, num_packets = _final_batch_shard_packets(
        static_engine, senders, frames_by_sender, batches
    )
    static_engine.close()

    rebalanced_engine, senders = build_skewed_meeting_pipeline(
        num_meetings,
        n_shards,
        participants,
        colocate_hot=colocate_hot,
        pipeline=ShardedScallopPipeline(
            SFU_ADDRESS, n_shards=n_shards, executor="serial", rebalance_config=config
        ),
    )
    rebalanced_packets, _ = _final_batch_shard_packets(
        rebalanced_engine, senders, frames_by_sender, batches
    )
    migrations = rebalanced_engine.migrations_applied
    rebalanced_engine.close()

    def skew(shard_packets: Tuple[int, ...]) -> float:
        mean = sum(shard_packets) / len(shard_packets)
        return max(shard_packets) / mean if mean else 0.0

    return RebalancePoint(
        n_shards=n_shards,
        num_meetings=num_meetings,
        num_packets=num_packets,
        batches=batches,
        skew_static=skew(static_packets),
        skew_rebalanced=skew(rebalanced_packets),
        migrations=migrations,
        shard_packets_static=static_packets,
        shard_packets_rebalanced=rebalanced_packets,
    )


def format_rebalance_point(point: RebalancePoint) -> str:
    lines = [
        f"skewed workload: {point.num_meetings} meetings, {point.num_packets} packets/batch, "
        f"k={point.n_shards}",
        f"{'placement':>12} {'per-shard packets':>28} {'max/mean':>9}",
        f"{'static':>12} {str(list(point.shard_packets_static)):>28} {point.skew_static:>8.2f}x",
        f"{'rebalanced':>12} {str(list(point.shard_packets_rebalanced)):>28} "
        f"{point.skew_rebalanced:>8.2f}x",
        f"skew cut {point.skew_reduction:.2f}x via {point.migrations} migrations",
    ]
    return "\n".join(lines)


def measure_shard_transport(
    n_shards: int = 4,
    num_meetings: int = 50,
    participants: int = 8,
    frames: int = 12,
) -> Dict[str, float]:
    """Quantify the packed shard transport against pickled object graphs.

    Partitions the standard 50-meeting ingress exactly the way the sharded
    engine would, encodes every partition with the packed ingress codec, runs
    the partitions through serial shards to obtain the results a worker would
    return, and encodes those with the packed result codec — then measures
    the same objects under ``pickle.dumps`` (what the process executor used
    to ship).  Returns per-batch byte totals and the shrink factors.
    """
    engine, senders = build_meeting_pipeline(
        num_meetings,
        participants,
        pipeline=ShardedScallopPipeline(SFU_ADDRESS, n_shards=n_shards, executor="serial"),
    )
    traffic = media_ingress(senders, frames)
    partitions: List[List[Datagram]] = [[] for _ in range(n_shards)]
    for datagram in traffic:
        partitions[flow_shard(datagram.src, datagram.payload.ssrc, n_shards)].append(datagram)

    packed_ingress = pickle_ingress = packed_results = pickle_results = 0
    for shard_id, partition in enumerate(partitions):
        if not partition:
            continue
        packed_ingress += len(encode_ingress_batch(partition))
        # the pickled size is the comparison baseline being measured
        pickle_ingress += len(pickle.dumps(partition, protocol=pickle.HIGHEST_PROTOCOL))  # archlint: ignore[zero-pickle]
        results = engine.shards[shard_id].process_batch(partition)
        blob, fallback = encode_result_batch(results, partition)
        packed_results += len(blob) + len(fallback)
        pickle_results += len(pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL))  # archlint: ignore[zero-pickle]
    engine.close()
    packed_total = packed_ingress + packed_results
    pickle_total = pickle_ingress + pickle_results
    return {
        "num_packets": len(traffic),
        "packed_ingress_bytes": packed_ingress,
        "pickle_ingress_bytes": pickle_ingress,
        "packed_result_bytes": packed_results,
        "pickle_result_bytes": pickle_results,
        "ingress_shrink": pickle_ingress / packed_ingress if packed_ingress else 0.0,
        "result_shrink": pickle_results / packed_results if packed_results else 0.0,
        "total_shrink": pickle_total / packed_total if packed_total else 0.0,
    }


def format_shard_sweep(points: Sequence[ShardThroughputPoint]) -> str:
    baseline = points[0].pps if points else 0.0
    baseline_k = points[0].n_shards if points else 1
    relative = f"vs k={baseline_k}"
    lines = [
        f"{'shards':>7} {'executor':>9} {'ingress':>8} {'packets':>9} {'pps':>13} {relative:>9}"
    ]
    for point in points:
        lines.append(
            f"{point.n_shards:>7} {point.executor:>9} {point.ingress:>8} {point.num_packets:>9} "
            f"{point.pps:>13,.0f} {point.pps / baseline:>8.2f}x"
        )
    return "\n".join(lines)


def format_batch_sweep(points: Sequence[BatchThroughputPoint]) -> str:
    lines = [
        f"{'meetings':>9} {'packets':>9} {'per-packet pps':>15} {'batched pps':>13} {'speedup':>8}"
    ]
    for point in points:
        lines.append(
            f"{point.num_meetings:>9} {point.num_packets:>9} {point.per_packet_pps:>15,.0f} "
            f"{point.batched_pps:>13,.0f} {point.speedup:>7.2f}x"
        )
    return "\n".join(lines)
