"""Table 3: Tofino resource utilization under campus-peak and maximum load."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.capacity import MeetingShape, ScallopCapacityModel
from ..dataplane.resources import ResourceUsage, table3_rows
from ..trace.packet_trace import CampusPacketTrace
from ..trace.zoom_api import ZoomApiDataset, ZoomApiDatasetConfig


@dataclass(frozen=True)
class ResourceReport:
    """The regenerated Table 3 plus the workloads that parameterize it."""

    rows: List[ResourceUsage]
    peak_campus_egress_bps: float
    max_utilization_egress_bps: float


def run_resource_report(
    dataset: Optional[ZoomApiDataset] = None,
    dataset_meetings: int = 2_000,
    seed: int = 3,
) -> ResourceReport:
    """Compute the egress-throughput rows from the campus workload and the
    capacity model, then emit the full Table 3."""
    if dataset is None:
        dataset = ZoomApiDataset.generate(
            ZoomApiDatasetConfig(num_meetings=dataset_meetings, seed=seed)
        )
    trace = CampusPacketTrace(dataset)
    peak_media_bps, _peak_control = trace.peak_offered_load(step_s=3600.0)

    # maximum utilization: the largest egress the switch would sustain when the
    # replication engine (not bandwidth) is the binding constraint, i.e. the
    # RA-R meeting capacity at the campus trace's typical meeting shape
    # (a small meeting with a single active video sender).
    model = ScallopCapacityModel()
    shape = MeetingShape(participants=3, senders=1)
    max_meetings = model.max_meetings_ra_r(shape)
    max_egress_bps = min(max_meetings * shape.egress_bps, model.capacities.switch_bandwidth_bps)

    rows = table3_rows(peak_campus_egress_bps=peak_media_bps, max_egress_bps=max_egress_bps)
    return ResourceReport(
        rows=rows,
        peak_campus_egress_bps=peak_media_bps,
        max_utilization_egress_bps=max_egress_bps,
    )


def format_report(report: ResourceReport) -> str:
    lines = [f"{'Resource type':<20}{'Scaling':>12}{'Peak campus':>22}{'Max util.':>16}"]
    for row in report.rows:
        lines.append(
            f"{row.resource:<20}{row.scaling:>12}{row.peak_campus_load:>22}{row.max_utilization:>16}"
        )
    return "\n".join(lines)
