"""STUN messages (RFC 5389 subset) used for WebRTC connectivity checks.

Scallop handles STUN in the control plane because the message format (TLV
attributes, 96-bit transaction ids, MESSAGE-INTEGRITY) is too irregular for
the switch pipeline.  The reproduction implements binding requests and
responses with the attributes WebRTC's ICE implementation actually sends:
USERNAME, PRIORITY, ICE-CONTROLLING/ICE-CONTROLLED, XOR-MAPPED-ADDRESS and a
(non-cryptographic) MESSAGE-INTEGRITY placeholder.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

STUN_MAGIC_COOKIE = 0x2112A442
STUN_HEADER_LEN = 20

METHOD_BINDING = 0x0001
CLASS_REQUEST = 0x00
CLASS_SUCCESS_RESPONSE = 0x02
CLASS_ERROR_RESPONSE = 0x03

ATTR_USERNAME = 0x0006
ATTR_MESSAGE_INTEGRITY = 0x0008
ATTR_XOR_MAPPED_ADDRESS = 0x0020
ATTR_PRIORITY = 0x0024
ATTR_ICE_CONTROLLING = 0x802A
ATTR_ICE_CONTROLLED = 0x8029


class StunParseError(ValueError):
    """Raised when a buffer cannot be parsed as a STUN message."""


def _message_type(method: int, msg_class: int) -> int:
    """Combine method and class into the 14-bit STUN message type."""
    return (
        (method & 0x0F80) << 2
        | (method & 0x0070) << 1
        | (method & 0x000F)
        | ((msg_class & 0x2) << 7)
        | ((msg_class & 0x1) << 4)
    )


def _split_message_type(message_type: int) -> Tuple[int, int]:
    method = (
        (message_type & 0x3E00) >> 2
        | (message_type & 0x00E0) >> 1
        | (message_type & 0x000F)
    )
    msg_class = ((message_type & 0x0100) >> 7) | ((message_type & 0x0010) >> 4)
    return method, msg_class


@dataclass(frozen=True)
class StunMessage:
    """A STUN message with raw attribute TLVs."""

    method: int
    msg_class: int
    transaction_id: bytes
    attributes: Tuple[Tuple[int, bytes], ...] = ()

    def __post_init__(self) -> None:
        if len(self.transaction_id) != 12:
            raise ValueError("transaction id must be 12 bytes")

    @property
    def is_request(self) -> bool:
        return self.msg_class == CLASS_REQUEST

    @property
    def is_success_response(self) -> bool:
        return self.msg_class == CLASS_SUCCESS_RESPONSE

    def attribute(self, attr_type: int) -> Optional[bytes]:
        for a_type, value in self.attributes:
            if a_type == attr_type:
                return value
        return None

    # -- wire format ----------------------------------------------------------

    def serialize(self) -> bytes:
        body = bytearray()
        for attr_type, value in self.attributes:
            body += struct.pack("!HH", attr_type, len(value))
            body += value
            while len(body) % 4 != 0:
                body += b"\x00"
        header = struct.pack(
            "!HHI",
            _message_type(self.method, self.msg_class),
            len(body),
            STUN_MAGIC_COOKIE,
        ) + self.transaction_id
        return header + bytes(body)

    @classmethod
    def parse(cls, data: bytes) -> "StunMessage":
        if len(data) < STUN_HEADER_LEN:
            raise StunParseError("buffer shorter than STUN header")
        message_type, length, cookie = struct.unpack_from("!HHI", data, 0)
        if message_type >> 14 != 0:
            raise StunParseError("top two bits of STUN message type must be zero")
        if cookie != STUN_MAGIC_COOKIE:
            raise StunParseError("bad STUN magic cookie")
        transaction_id = data[8:20]
        if len(data) < STUN_HEADER_LEN + length:
            raise StunParseError("truncated STUN message")
        attributes: List[Tuple[int, bytes]] = []
        offset = STUN_HEADER_LEN
        end = STUN_HEADER_LEN + length
        while offset + 4 <= end:
            attr_type, attr_len = struct.unpack_from("!HH", data, offset)
            offset += 4
            value = data[offset : offset + attr_len]
            if len(value) < attr_len:
                raise StunParseError("truncated STUN attribute")
            attributes.append((attr_type, value))
            offset += attr_len
            offset += (4 - attr_len % 4) % 4
        method, msg_class = _split_message_type(message_type)
        return cls(
            method=method,
            msg_class=msg_class,
            transaction_id=transaction_id,
            attributes=tuple(attributes),
        )


def looks_like_stun(data: bytes) -> bool:
    """Classification used by the data plane: STUN starts with two zero bits
    and carries the magic cookie at offset 4."""
    if len(data) < 8:
        return False
    if data[0] & 0xC0 != 0:
        return False
    return struct.unpack_from("!I", data, 4)[0] == STUN_MAGIC_COOKIE


def make_binding_request(
    transaction_id: bytes,
    username: str,
    priority: int = 0,
    controlling: bool = True,
) -> StunMessage:
    """Build an ICE connectivity-check binding request."""
    attributes: List[Tuple[int, bytes]] = [
        (ATTR_USERNAME, username.encode()),
        (ATTR_PRIORITY, struct.pack("!I", priority)),
    ]
    role_attr = ATTR_ICE_CONTROLLING if controlling else ATTR_ICE_CONTROLLED
    attributes.append((role_attr, b"\x00" * 8))
    attributes.append((ATTR_MESSAGE_INTEGRITY, _pseudo_hmac(username, transaction_id)))
    return StunMessage(
        method=METHOD_BINDING,
        msg_class=CLASS_REQUEST,
        transaction_id=transaction_id,
        attributes=tuple(attributes),
    )


def make_binding_response(request: StunMessage, mapped_ip: str, mapped_port: int) -> StunMessage:
    """Build the success response to a binding request."""
    xor_addr = _encode_xor_mapped_address(mapped_ip, mapped_port, request.transaction_id)
    return StunMessage(
        method=METHOD_BINDING,
        msg_class=CLASS_SUCCESS_RESPONSE,
        transaction_id=request.transaction_id,
        attributes=((ATTR_XOR_MAPPED_ADDRESS, xor_addr),),
    )


def decode_xor_mapped_address(message: StunMessage) -> Optional[Tuple[str, int]]:
    """Extract the (ip, port) from a binding response, if present."""
    raw = message.attribute(ATTR_XOR_MAPPED_ADDRESS)
    if raw is None or len(raw) < 8:
        return None
    port = struct.unpack_from("!H", raw, 2)[0] ^ (STUN_MAGIC_COOKIE >> 16)
    addr_bytes = bytes(
        b ^ m for b, m in zip(raw[4:8], struct.pack("!I", STUN_MAGIC_COOKIE))
    )
    ip = ".".join(str(b) for b in addr_bytes)
    return ip, port


def _encode_xor_mapped_address(ip: str, port: int, transaction_id: bytes) -> bytes:
    addr = bytes(int(part) for part in ip.split("."))
    xport = port ^ (STUN_MAGIC_COOKIE >> 16)
    xaddr = bytes(b ^ m for b, m in zip(addr, struct.pack("!I", STUN_MAGIC_COOKIE)))
    return struct.pack("!BBH", 0, 0x01, xport) + xaddr


def _pseudo_hmac(username: str, transaction_id: bytes) -> bytes:
    """A stand-in for MESSAGE-INTEGRITY.

    The reproduction does not exercise SRTP/ICE credentials cryptographically
    (the paper's prototype also leaves SRTP unimplemented, §8), but keeping a
    20-byte digest here preserves packet sizes for the Table 1 accounting.
    """
    return hashlib.sha1(username.encode() + transaction_id).digest()
