"""STUN connectivity-check substrate (RFC 5389 subset)."""

from .message import (
    METHOD_BINDING,
    StunMessage,
    StunParseError,
    decode_xor_mapped_address,
    looks_like_stun,
    make_binding_request,
    make_binding_response,
)

__all__ = [
    "METHOD_BINDING",
    "StunMessage",
    "StunParseError",
    "decode_xor_mapped_address",
    "looks_like_stun",
    "make_binding_request",
    "make_binding_response",
]
