"""The Scallop centralized controller (paper §4, §5.1).

The controller is the top tier of the three-plane architecture.  It acts as
the WebRTC signaling server: it terminates SDP offer/answer exchanges, rewrites
connection candidates so that every participant's sole peer appears to be the
SFU, tracks sessions/participants/streams, and instructs the switch agent to
(re)configure the data plane whenever membership or media composition changes
— the only three events that ever reach the controller (session creation,
join/leave, media start/stop).

The controller is deliberately unaware of packets; it exchanges
:class:`~repro.signaling.messages.SignalMessage` objects with clients and RPCs
(direct method calls in this in-process model) with the switch agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netsim.datagram import Address
from ..signaling.messages import SignalMessage, SignalType, answer_message
from ..signaling.sdp import SessionDescription, make_answer
from .capacity import ReplicationDesign
from .replication import ParticipantEndpoint
from .switch_agent import SwitchAgent


class SignalingError(RuntimeError):
    """Raised for invalid signaling sequences (join to unknown meeting, etc.)."""


@dataclass
class ParticipantRecord:
    """Controller-side state about one participant."""

    participant_id: str
    meeting_id: str
    address: Address
    audio_ssrc: Optional[int] = None
    video_ssrc: Optional[int] = None
    screen_ssrc: Optional[int] = None
    offer: Optional[SessionDescription] = None

    def endpoint(self) -> ParticipantEndpoint:
        return ParticipantEndpoint(
            participant_id=self.participant_id,
            address=self.address,
            egress_port=0,  # assigned by the replication manager
            audio_ssrc=self.audio_ssrc,
            video_ssrc=self.video_ssrc,
        )


@dataclass
class MeetingRecord:
    """Controller-side state about one meeting (session)."""

    meeting_id: str
    participants: Dict[str, ParticipantRecord] = field(default_factory=dict)
    created_at: float = 0.0

    @property
    def size(self) -> int:
        return len(self.participants)


@dataclass
class ControllerCounters:
    """Signaling workload counters (all in the infrequent class of Fig. 6)."""

    joins: int = 0
    leaves: int = 0
    media_events: int = 0
    sdp_rewrites: int = 0
    meetings_created: int = 0
    meetings_closed: int = 0


class ScallopController:
    """The centralized controller / signaling server."""

    def __init__(self, sfu_address: Address, agent: SwitchAgent) -> None:
        self.sfu_address = sfu_address
        self.agent = agent
        self.meetings: Dict[str, MeetingRecord] = {}
        self.counters = ControllerCounters()

    # ------------------------------------------------------------------ signaling entry point

    def handle_signal(self, message: SignalMessage) -> Optional[SignalMessage]:
        """Process one signaling message and return the reply, if any."""
        if message.type == SignalType.JOIN:
            return self._handle_join(message)
        if message.type == SignalType.LEAVE:
            self._handle_leave(message)
            return None
        if message.type in (SignalType.MEDIA_STARTED, SignalType.MEDIA_STOPPED):
            self._handle_media_event(message)
            return None
        raise SignalingError(f"controller cannot handle message type {message.type}")

    # ------------------------------------------------------------------ join / leave

    def _handle_join(self, message: SignalMessage) -> SignalMessage:
        offer = message.session_description()
        if offer is None:
            raise SignalingError("join message must carry an SDP offer")
        meeting = self.meetings.get(message.meeting_id)
        if meeting is None:
            meeting = MeetingRecord(meeting_id=message.meeting_id)
            self.meetings[message.meeting_id] = meeting
            self.counters.meetings_created += 1

        record = ParticipantRecord(
            participant_id=message.participant_id,
            meeting_id=message.meeting_id,
            address=self._address_from_offer(offer),
            offer=offer,
        )
        for section in offer.media:
            if section.kind == "audio":
                record.audio_ssrc = section.ssrc
            elif section.kind == "video":
                record.video_ssrc = section.ssrc
            elif section.kind == "screen":
                record.screen_ssrc = section.ssrc
        meeting.participants[message.participant_id] = record
        self.counters.joins += 1

        self._reconfigure_meeting(meeting)

        # Rewrite candidates: the participant's sole peer becomes the SFU.
        answer = make_answer(offer, self.sfu_address.ip, self.sfu_address.port)
        self.counters.sdp_rewrites += 1
        return answer_message(message.meeting_id, message.participant_id, answer)

    def _handle_leave(self, message: SignalMessage) -> None:
        meeting = self.meetings.get(message.meeting_id)
        if meeting is None:
            return
        if message.participant_id in meeting.participants:
            del meeting.participants[message.participant_id]
            self.agent.remove_participant(message.meeting_id, message.participant_id)
            self.counters.leaves += 1
        if not meeting.participants:
            del self.meetings[message.meeting_id]
            self.counters.meetings_closed += 1
        else:
            self._reconfigure_meeting(meeting)

    def _handle_media_event(self, message: SignalMessage) -> None:
        meeting = self.meetings.get(message.meeting_id)
        if meeting is None or message.participant_id not in meeting.participants:
            raise SignalingError("media event for unknown meeting or participant")
        self.counters.media_events += 1
        # Media composition changes alter the set of sender streams, which is a
        # controller-triggered reconfiguration in Scallop's architecture.
        self._reconfigure_meeting(meeting)

    # ------------------------------------------------------------------ agent RPCs

    def _reconfigure_meeting(self, meeting: MeetingRecord) -> None:
        endpoints = [record.endpoint() for record in meeting.participants.values()]
        if not endpoints:
            return
        design = self._design_for(meeting)
        self.agent.configure_meeting(meeting.meeting_id, endpoints, design=design)

    def _design_for(self, meeting: MeetingRecord) -> ReplicationDesign:
        """Initial replication design for a meeting (the agent may migrate later)."""
        if meeting.size == 2:
            return ReplicationDesign.TWO_PARTY
        return ReplicationDesign.NRA

    # ------------------------------------------------------------------ helpers / inspection

    @staticmethod
    def _address_from_offer(offer: SessionDescription) -> Address:
        for section in offer.media:
            for candidate in section.candidates:
                return Address(candidate.ip, candidate.port)
        return Address(offer.origin_address, 0)

    def meeting_sizes(self) -> Dict[str, int]:
        return {meeting_id: meeting.size for meeting_id, meeting in self.meetings.items()}

    def total_participants(self) -> int:
        return sum(meeting.size for meeting in self.meetings.values())
