"""Scallop core: controller, switch agent, data-plane configuration, capacity."""

from .capacity import (
    DesignSpacePoint,
    ImprovementPoint,
    MeetingShape,
    MinMaxPoint,
    ReplicationDesign,
    RewriteVariant,
    ScallopCapacityModel,
    SoftwareSfuCapacityModel,
    figure15_series,
    figure16_series,
    figure17_series,
    improvement_over_software,
)
from .rate_control import (
    DecodeTargetTracker,
    DownlinkFilter,
    select_decode_target,
)
from .seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
    ideal_rewrite_map,
    ideal_rewrite_sequence,
)
from .replication import MeetingReplicationState, ParticipantEndpoint, ReplicationManager
from .switch_agent import AgentCounters, SwitchAgent
from .controller import ControllerCounters, MeetingRecord, ParticipantRecord, ScallopController
from .scallop import ScallopSfu, SfuForwardingStats

__all__ = [
    "DesignSpacePoint",
    "ImprovementPoint",
    "MeetingShape",
    "MinMaxPoint",
    "ReplicationDesign",
    "RewriteVariant",
    "ScallopCapacityModel",
    "SoftwareSfuCapacityModel",
    "figure15_series",
    "figure16_series",
    "figure17_series",
    "improvement_over_software",
    "DecodeTargetTracker",
    "DownlinkFilter",
    "select_decode_target",
    "SequenceRewriterLowMemory",
    "SequenceRewriterLowRetransmission",
    "SkipCadence",
    "ideal_rewrite_map",
    "ideal_rewrite_sequence",
    "MeetingReplicationState",
    "ParticipantEndpoint",
    "ReplicationManager",
    "AgentCounters",
    "SwitchAgent",
    "ControllerCounters",
    "MeetingRecord",
    "ParticipantRecord",
    "ScallopController",
    "ScallopSfu",
    "SfuForwardingStats",
]
