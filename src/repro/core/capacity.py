"""Analytic capacity models for Scallop and the software-SFU baseline.

The paper's scalability results (§6.1, §7.2, Figures 15-17) are arithmetic
over hardware capacities and meeting shapes:

* **NRA** (no rate adaptation): ``m * T`` meetings — every meeting occupies a
  share of a multicast tree; two meetings (``m = 2``) share one tree via L1
  pruning.
* **RA-R** (receiver-specific rate adaptation): one tree per media quality per
  tree-group, i.e. ``m * T / q`` meetings.
* **RA-SR** (sender- and receiver-specific): two senders (and their
  receivers) per quality per tree, i.e. ``2 T / (q * S)`` meetings for ``S``
  senders per meeting.
* **Two-party**: no replication trees at all; capacity is bounded by the
  exact-match entries needed to rewrite addresses (two per meeting).
* **Sequence-rewrite memory**: every rate-adapted output variant of a sender's
  stream needs per-stream register state; S-LM packs more streams than S-LR.
* **Egress bandwidth**: grows quadratically with participants and linearly
  with the per-stream bitrate.

The software baseline is calibrated exactly to the two numbers the paper
reports for a 32-core server: 192 ten-party all-sending meetings and 4.8K
two-party meetings, both of which correspond to a budget of 38,400 concurrent
media streams (counting, per media type, ``S`` incoming and ``S * (N - 1)``
outgoing streams).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..dataplane.resources import DEFAULT_CAPACITIES, TofinoCapacities


class ReplicationDesign(str, Enum):
    """Replication-tree construction designs (paper §6.1)."""

    TWO_PARTY = "two_party"
    NRA = "nra"
    RA_R = "ra_r"
    RA_SR = "ra_sr"


class RewriteVariant(str, Enum):
    """Sequence-number rewriting heuristics (paper §6.2)."""

    S_LM = "s_lm"
    S_LR = "s_lr"


#: Rate-adapted stream-state capacity per rewrite variant.  S-LR keeps twice
#: the per-stream state of S-LM (six vs. three register tables), so the same
#: SRAM budget holds half as many streams.
REWRITE_STREAM_CAPACITY: Dict[RewriteVariant, int] = {
    RewriteVariant.S_LM: 131_072,
    RewriteVariant.S_LR: 65_536,
}

#: Concurrent media streams a 32-core commodity server sustains (calibrated to
#: the paper's 192 ten-party meetings / 4.8K two-party meetings).
SOFTWARE_MAX_STREAMS_32_CORE = 38_400


@dataclass(frozen=True)
class MeetingShape:
    """The workload parameters the capacity formulas depend on."""

    participants: int
    senders: Optional[int] = None          # default: everyone sends
    video_bitrate_bps: float = 2_200_000.0
    audio_bitrate_bps: float = 50_000.0
    media_types_per_sender: int = 2        # audio + video
    qualities: int = 3                     # L1T3 decode targets

    def __post_init__(self) -> None:
        if self.participants < 2:
            raise ValueError("a meeting needs at least two participants")
        if self.senders is not None and not 1 <= self.senders <= self.participants:
            raise ValueError("senders must be between 1 and the number of participants")

    @property
    def num_senders(self) -> int:
        return self.participants if self.senders is None else self.senders

    @property
    def streams_at_sfu(self) -> int:
        """Concurrent media streams the SFU handles for one such meeting.

        Per media type a sender contributes one incoming stream and ``N - 1``
        outgoing replicas, giving ``S * N`` streams; audio and video double it.
        """
        return self.media_types_per_sender * self.num_senders * self.participants

    @property
    def egress_bps(self) -> float:
        """Egress bandwidth one meeting consumes at the SFU."""
        per_sender = self.video_bitrate_bps + self.audio_bitrate_bps
        return self.num_senders * (self.participants - 1) * per_sender

    @property
    def rate_adapted_streams(self) -> int:
        """Output stream variants needing sequence-rewrite state.

        With SVC, receivers sharing a decode target share the identical
        rewritten stream, so at most ``q - 1`` adapted variants (all targets
        below the full quality) exist per sender stream.
        """
        variants = min(self.qualities - 1, self.participants - 1)
        return self.num_senders * variants


class SoftwareSfuCapacityModel:
    """Capacity of a software split-proxy SFU on an n-core server."""

    def __init__(self, cores: int = 32, streams_per_32_cores: int = SOFTWARE_MAX_STREAMS_32_CORE) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cores = cores
        self.max_streams = streams_per_32_cores * cores / 32.0

    def max_meetings(self, shape: MeetingShape) -> float:
        """Concurrent meetings of this shape a single server supports."""
        return self.max_streams / shape.streams_at_sfu


class ScallopCapacityModel:
    """Capacity of the Scallop data plane under each design and bottleneck."""

    def __init__(self, capacities: TofinoCapacities = DEFAULT_CAPACITIES) -> None:
        self.capacities = capacities

    # -- per-design tree limits ---------------------------------------------------

    def max_meetings_two_party(self, shape: Optional[MeetingShape] = None) -> float:
        """Two-party meetings: unicast only, bounded by exact-match entries."""
        return self.capacities.exact_match_entries / 2.0

    def max_meetings_nra(self, shape: MeetingShape) -> float:
        tree_limit = self.capacities.meetings_per_tree * self.capacities.max_multicast_trees
        l1_limit = self.capacities.max_l1_nodes / shape.participants
        return min(tree_limit, l1_limit)

    def max_meetings_ra_r(self, shape: MeetingShape) -> float:
        tree_limit = (
            self.capacities.meetings_per_tree * self.capacities.max_multicast_trees / shape.qualities
        )
        l1_limit = self.capacities.max_l1_nodes / (shape.qualities * shape.participants)
        return min(tree_limit, l1_limit)

    def max_meetings_ra_sr(self, shape: MeetingShape) -> float:
        tree_limit = (2.0 * self.capacities.max_multicast_trees) / (
            shape.qualities * shape.num_senders
        )
        l1_limit = self.capacities.max_l1_nodes / (
            shape.qualities * shape.num_senders * shape.participants / 2.0
        )
        return min(tree_limit, l1_limit)

    def max_meetings_for_design(self, shape: MeetingShape, design: ReplicationDesign) -> float:
        if design == ReplicationDesign.TWO_PARTY:
            if shape.participants != 2:
                raise ValueError("the two-party design only applies to two-party meetings")
            return self.max_meetings_two_party(shape)
        if design == ReplicationDesign.NRA:
            return self.max_meetings_nra(shape)
        if design == ReplicationDesign.RA_R:
            return self.max_meetings_ra_r(shape)
        return self.max_meetings_ra_sr(shape)

    # -- cross-cutting limits -------------------------------------------------------

    def rewrite_limit(self, shape: MeetingShape, variant: RewriteVariant) -> float:
        """Meetings supported before the sequence-rewrite state is exhausted."""
        adapted = shape.rate_adapted_streams
        if adapted == 0:
            return math.inf
        return REWRITE_STREAM_CAPACITY[variant] / adapted

    def bandwidth_limit(self, shape: MeetingShape) -> float:
        """Meetings supported before the switch's egress bandwidth is exhausted."""
        if shape.egress_bps <= 0:
            return math.inf
        return self.capacities.switch_bandwidth_bps / shape.egress_bps

    # -- combined -----------------------------------------------------------------------

    def max_meetings(
        self,
        shape: MeetingShape,
        design: ReplicationDesign,
        variant: RewriteVariant = RewriteVariant.S_LM,
        rate_adapted: bool = True,
    ) -> float:
        """Concurrent meetings under a design, a rewrite variant, and bandwidth."""
        limits = [
            self.max_meetings_for_design(shape, design),
            self.bandwidth_limit(shape),
        ]
        if rate_adapted and design not in (ReplicationDesign.NRA, ReplicationDesign.TWO_PARTY):
            limits.append(self.rewrite_limit(shape, variant))
        return min(limits)

    def best_design(self, shape: MeetingShape, rate_adapted: bool) -> ReplicationDesign:
        """The design the switch agent would migrate this meeting shape to."""
        if shape.participants == 2:
            return ReplicationDesign.TWO_PARTY
        if not rate_adapted:
            return ReplicationDesign.NRA
        return ReplicationDesign.RA_R

    def best_case_meetings(self, shape: MeetingShape, rate_adapted: bool = True) -> float:
        """Max meetings with the most favourable design and rewrite variant."""
        design = self.best_design(shape, rate_adapted)
        return self.max_meetings(shape, design, RewriteVariant.S_LM, rate_adapted)

    def worst_case_meetings(self, shape: MeetingShape) -> float:
        """Max meetings with the least favourable (RA-SR + S-LR) configuration."""
        if shape.participants == 2:
            return self.max_meetings(shape, ReplicationDesign.TWO_PARTY, RewriteVariant.S_LR)
        return self.max_meetings(shape, ReplicationDesign.RA_SR, RewriteVariant.S_LR)


@dataclass(frozen=True)
class ImprovementPoint:
    """One x-value of Figure 15: the Scallop-vs-software improvement range."""

    participants: int
    improvement_min: float
    improvement_max: float


def improvement_over_software(
    participants: int,
    scallop: Optional[ScallopCapacityModel] = None,
    software: Optional[SoftwareSfuCapacityModel] = None,
) -> ImprovementPoint:
    """Scallop's scalability gain over a 32-core server for one meeting size.

    The lower bound uses the most constrained Scallop configuration (RA-SR
    trees with the S-LR rewriter, all participants sending); the upper bound
    uses the most favourable one (best design, S-LM, and the sender mix that
    maximizes the ratio).
    """
    scallop = scallop or ScallopCapacityModel()
    software = software or SoftwareSfuCapacityModel()

    ratios: List[float] = []
    sender_counts = sorted({1, max(1, participants // 2), participants})
    for senders in sender_counts:
        shape = MeetingShape(participants=participants, senders=senders)
        sw = software.max_meetings(shape)
        ratios.append(scallop.best_case_meetings(shape, rate_adapted=True) / sw)
        ratios.append(scallop.worst_case_meetings(shape) / sw)

    return ImprovementPoint(
        participants=participants,
        improvement_min=min(ratios),
        improvement_max=max(ratios),
    )


def figure15_series(
    participant_range: Optional[List[int]] = None,
) -> List[ImprovementPoint]:
    """The Figure 15 series: improvement range vs. participants per meeting."""
    points = participant_range or [2, 3, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    return [improvement_over_software(n) for n in points]


@dataclass(frozen=True)
class MinMaxPoint:
    """One x-value of Figure 16: best/worst-case meetings for both systems."""

    participants: int
    scallop_min: float
    scallop_max: float
    software_min: float
    software_max: float


def figure16_series(participant_range: Optional[List[int]] = None) -> List[MinMaxPoint]:
    """Best-case (one sender) and worst-case (all senders) supported meetings."""
    scallop = ScallopCapacityModel()
    software = SoftwareSfuCapacityModel()
    points = participant_range or [2, 3, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    series: List[MinMaxPoint] = []
    for n in points:
        all_send = MeetingShape(participants=n)
        one_sends = MeetingShape(participants=n, senders=1)
        series.append(
            MinMaxPoint(
                participants=n,
                scallop_min=scallop.worst_case_meetings(all_send),
                scallop_max=scallop.best_case_meetings(one_sends, rate_adapted=(n > 2)),
                software_min=software.max_meetings(all_send),
                software_max=software.max_meetings(one_sends),
            )
        )
    return series


@dataclass(frozen=True)
class DesignSpacePoint:
    """One x-value of Figure 17: every constraint line, all participants sending."""

    participants: int
    nra: float
    ra_r: float
    ra_sr: float
    s_lm: float
    s_lr: float
    bandwidth: float
    software: float

    def overall(self, design: ReplicationDesign, variant: RewriteVariant) -> float:
        """The system capacity: the minimum of the applicable constraints."""
        design_limit = {
            ReplicationDesign.NRA: self.nra,
            ReplicationDesign.RA_R: self.ra_r,
            ReplicationDesign.RA_SR: self.ra_sr,
            ReplicationDesign.TWO_PARTY: self.nra,
        }[design]
        rewrite = self.s_lm if variant == RewriteVariant.S_LM else self.s_lr
        if design == ReplicationDesign.NRA:
            return min(design_limit, self.bandwidth)
        return min(design_limit, rewrite, self.bandwidth)


def figure17_series(participant_range: Optional[List[int]] = None) -> List[DesignSpacePoint]:
    """The Figure 17 lines: per-design and per-bottleneck capacity vs. N."""
    scallop = ScallopCapacityModel()
    software = SoftwareSfuCapacityModel()
    points = participant_range or [2, 3, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    series: List[DesignSpacePoint] = []
    for n in points:
        shape = MeetingShape(participants=n)
        series.append(
            DesignSpacePoint(
                participants=n,
                nra=scallop.max_meetings_nra(shape),
                ra_r=scallop.max_meetings_ra_r(shape),
                ra_sr=scallop.max_meetings_ra_sr(shape),
                s_lm=scallop.rewrite_limit(shape, RewriteVariant.S_LM),
                s_lr=scallop.rewrite_limit(shape, RewriteVariant.S_LR),
                bandwidth=scallop.bandwidth_limit(shape),
                software=software.max_meetings(shape),
            )
        )
    return series
