"""The integrated Scallop SFU: data plane + switch agent + controller on the
simulated network.

:class:`ScallopSfu` is a network endpoint (it has an address and a
``handle_datagram`` method) that wires the three tiers together:

* every arriving packet traverses the :class:`~repro.dataplane.pipeline.ScallopPipeline`
  with a fixed hardware forwarding delay,
* copies punted to the CPU reach the :class:`~repro.core.switch_agent.SwitchAgent`
  after a software processing delay,
* the :class:`~repro.core.controller.ScallopController` handles signaling
  (off the packet path entirely), and
* a periodic task runs the agent's best-downlink filter function.

It also exposes convenience helpers to sign clients into meetings so the
examples and experiments read like the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dataplane.pipeline import ScallopPipeline, SWITCH_FORWARDING_DELAY_S
from ..dataplane.rebalance import RebalancerConfig
from ..obs.hooks import ObsConfig
from ..dataplane.resources import DEFAULT_CAPACITIES, TofinoCapacities
from ..dataplane.sharding import ShardedScallopPipeline
from ..netsim.datagram import Address, Datagram
from ..netsim.link import Network, SFU_PORT_PROFILE, LinkProfile
from ..netsim.simulator import Simulator
from ..signaling.messages import join_message, leave_message
from ..webrtc.client import WebRtcClient
from .capacity import RewriteVariant
from .controller import ScallopController
from .rate_control import select_decode_target
from .switch_agent import AGENT_PROCESSING_DELAY_S, FILTER_RESELECT_INTERVAL_S, SwitchAgent


@dataclass
class SfuForwardingStats:
    """End-to-end accounting of what the SFU did on the packet path."""

    packets_in: int = 0
    packets_out: int = 0
    packets_to_cpu: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    bytes_to_cpu: int = 0


class ScallopSfu:
    """Scallop deployed as a single switch plus its software control plane."""

    def __init__(
        self,
        address: Address,
        simulator: Simulator,
        network: Network,
        rewrite_variant: RewriteVariant = RewriteVariant.S_LR,
        capacities: TofinoCapacities = DEFAULT_CAPACITIES,
        uplink_profile: Optional[LinkProfile] = None,
        downlink_profile: Optional[LinkProfile] = None,
        adaptation_thresholds_bps: Optional[Tuple[float, float]] = None,
        n_shards: int = 1,
        shard_executor: str = "serial",
        rebalance: Union[bool, RebalancerConfig, None] = None,
        srtp: Optional[object] = None,
        profile: bool = False,
        obs: Union[bool, ObsConfig, None] = None,
    ) -> None:
        self.address = address
        self.simulator = simulator
        self.network = network
        if rebalance is True:
            rebalance = RebalancerConfig()
        elif rebalance is False:
            rebalance = None
        #: ``n_shards=1`` keeps the single-datapath reference engine;
        #: ``n_shards>=2`` (or any sharded-only feature such as the process
        #: executor, the load-aware rebalancer, or the coordinator stage
        #: profile) partitions every ingress burst by flow across
        #: share-nothing datapath shards behind the same pipeline API (the
        #: outputs are byte-identical either way).
        if n_shards > 1 or shard_executor != "serial" or rebalance is not None or profile:
            self.pipeline = ShardedScallopPipeline(
                address,
                n_shards=n_shards,
                capacities=capacities,
                executor=shard_executor,
                rebalance_config=rebalance,
                srtp=srtp,
                profile=profile,
                obs=obs,
            )
        else:
            obs_config = ObsConfig() if obs is True else (obs or None)
            self.pipeline = ScallopPipeline(address, capacities, srtp=srtp, obs=obs_config)
        if adaptation_thresholds_bps is not None:
            high, low = adaptation_thresholds_bps

            def select_fn(current, history, estimate, _high=high, _low=low):
                return select_decode_target(
                    current, history, estimate, threshold_high_bps=_high, threshold_low_bps=_low
                )

        else:
            select_fn = select_decode_target
        self.agent = SwitchAgent(
            self.pipeline,
            send_fn=self._agent_send,
            rewrite_variant=rewrite_variant,
            select_fn=select_fn,
            clock=lambda: simulator.now,
        )
        self.controller = ScallopController(address, self.agent)
        self.stats = SfuForwardingStats()
        #: Per-packet SFU-induced forwarding latency samples in milliseconds
        #: (the quantity compared in Figure 19).
        self.forwarding_latency_samples_ms: List[float] = []
        self._running = False

        network.attach(
            self,
            uplink=uplink_profile or SFU_PORT_PROFILE,
            downlink=downlink_profile or SFU_PORT_PROFILE,
        )

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the agent's periodic filter-function task."""
        if self._running:
            return
        self._running = True
        self.simulator.schedule(FILTER_RESELECT_INTERVAL_S, self._filter_tick)

    def stop(self) -> None:
        self._running = False

    def close(self) -> None:
        """Stop periodic work and release pipeline backend resources (the
        sharded engine's process executor spawns per-shard worker pools that
        would otherwise outlive the simulation)."""
        self.stop()
        self.pipeline.close()

    def _filter_tick(self) -> None:
        if not self._running:
            return
        self.agent.run_filter_function()
        self.simulator.schedule(FILTER_RESELECT_INTERVAL_S, self._filter_tick)

    # ------------------------------------------------------------------ packet path

    def handle_datagram(self, datagram: Datagram) -> None:
        """Entry point for every packet the switch receives."""
        result = self.pipeline.process(datagram)
        self._account_result(datagram, result)
        for output in result.outputs:
            self.simulator.schedule(result.forwarding_delay_s, lambda d=output: self.network.send(d))

    def handle_datagram_batch(self, datagrams: Sequence[Datagram]) -> None:
        """Entry point for a packet burst (batch-mode network delivery).

        Runs the whole burst through :meth:`ScallopPipeline.process_batch`
        (same outputs as per-packet processing, amortized overhead) and ships
        all resulting replicas onward as one burst after the hardware
        forwarding delay.
        """
        results = self.pipeline.process_batch(datagrams)
        outputs: List[Datagram] = []
        forwarding_delay_s = SWITCH_FORWARDING_DELAY_S
        for datagram, result in zip(datagrams, results):
            self._account_result(datagram, result)
            if result.outputs:
                outputs.extend(result.outputs)
                forwarding_delay_s = max(forwarding_delay_s, result.forwarding_delay_s)
        if outputs:
            # the replicas carry their per-packet switch-egress times
            # (ingress arrival + forwarding delay) in ``arrived_at``, so the
            # network admits each one on its true schedule even though the
            # whole burst rides this single event
            self.simulator.schedule(
                forwarding_delay_s, lambda batch=outputs: self.network.send_burst(batch)
            )

    def _account_result(self, datagram: Datagram, result) -> None:
        """Per-packet stats/latency/CPU-copy bookkeeping shared by both the
        per-packet and batch ingress paths."""
        stats = self.stats
        stats.packets_in += 1
        stats.bytes_in += datagram.size
        latency_samples = self.forwarding_latency_samples_ms
        for output in result.outputs:
            stats.packets_out += 1
            stats.bytes_out += output.size
            if len(latency_samples) < 500_000:
                latency_samples.append(result.forwarding_delay_s * 1000.0)
        now = self.simulator.now
        for copy in result.cpu_copies:
            stats.packets_to_cpu += 1
            stats.bytes_to_cpu += copy.size
            # under burst ingest the copy's true arrival can precede this
            # (coalesced) event; anchor the agent delay on the schedule so
            # CPU-path timing matches per-packet delivery
            arrived = copy.arrived_at
            delay = AGENT_PROCESSING_DELAY_S if arrived is None else max(
                0.0, arrived + AGENT_PROCESSING_DELAY_S - now
            )
            self.simulator.schedule(delay, lambda d=copy: self.agent.handle_cpu_packet(d))

    def _agent_send(self, datagram: Datagram) -> None:
        """Packets originated by the switch agent (e.g. STUN responses)."""
        out = datagram.redirect(self.address, datagram.dst)
        self.stats.packets_out += 1
        self.stats.bytes_out += out.size
        self.network.send(out)

    # ------------------------------------------------------------------ signaling helpers

    def join(self, client: WebRtcClient) -> None:
        """Run the signaling exchange for a client joining its meeting."""
        offer = client.create_offer()
        message = join_message(client.config.meeting_id, client.config.participant_id, offer)
        reply = self.controller.handle_signal(message)
        if reply is not None:
            answer = reply.session_description()
            if answer is not None:
                client.apply_answer(answer)

    def leave(self, client: WebRtcClient) -> None:
        """Run the signaling exchange for a client leaving its meeting."""
        self.controller.handle_signal(
            leave_message(client.config.meeting_id, client.config.participant_id)
        )

    # ------------------------------------------------------------------ reporting

    def data_plane_fraction(self) -> Dict[str, float]:
        """Fraction of packets and bytes handled entirely in the data plane."""
        counters = self.pipeline.counters
        total_packets = counters.data_plane_packets + counters.cpu_packets
        total_bytes = counters.data_plane_bytes + counters.cpu_bytes
        if total_packets == 0:
            return {"packets": 0.0, "bytes": 0.0}
        return {
            "packets": counters.data_plane_packets / total_packets,
            "bytes": counters.data_plane_bytes / total_bytes if total_bytes else 0.0,
        }

    @property
    def forwarding_delay_s(self) -> float:
        return SWITCH_FORWARDING_DELAY_S
