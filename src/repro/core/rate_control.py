"""Rate-adaptation logic that runs on the switch agent (paper §5.3 and §5.4).

Two pieces live here:

* :class:`DownlinkFilter` — the filter function *f* of Figure 8.  Scallop
  splits WebRTC streams per participant so each REMB refers to exactly one
  sender; the filter keeps an EWMA of every receiver's estimates per sender,
  periodically picks the best-performing downlink, and tells the data plane to
  forward only that receiver's REMB messages to the sender.  The sender then
  transmits at the rate allowed by its uplink and the best downlink, while the
  SFU adapts the stream down for everyone else.

* :func:`select_decode_target` — the default implementation of the
  ``selectDecodeTarget(currDT, estHist, newEst)`` hook.  Adopters can plug in
  arbitrary policies; the default is the fixed-threshold heuristic the paper's
  prototype uses, with hysteresis so the decode target does not flap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..rtp.av1 import DecodeTarget

#: Default thresholds (bits/second) at which the L1T3 decode target changes.
#: Streams above ``high`` get all three temporal layers, streams between
#: ``low`` and ``high`` get two, and anything below gets only the base layer.
DEFAULT_THRESHOLD_HIGH_BPS = 1_200_000.0
DEFAULT_THRESHOLD_LOW_BPS = 500_000.0
#: Hysteresis factor applied when *upgrading* the decode target, so a stream
#: does not oscillate around a threshold.
UPGRADE_HYSTERESIS = 1.15

SelectDecodeTargetFn = Callable[[DecodeTarget, Sequence[float], float], DecodeTarget]


def select_decode_target(
    current: DecodeTarget,
    estimate_history: Sequence[float],
    new_estimate: float,
    threshold_high_bps: float = DEFAULT_THRESHOLD_HIGH_BPS,
    threshold_low_bps: float = DEFAULT_THRESHOLD_LOW_BPS,
) -> DecodeTarget:
    """The default ``selectDecodeTarget`` heuristic (fixed thresholds + hysteresis).

    ``estimate_history`` holds recent REMB values for the stream (oldest
    first); the decision uses the new estimate, requiring a margin above the
    threshold before upgrading the quality again.
    """
    if new_estimate >= threshold_high_bps * (UPGRADE_HYSTERESIS if current < DecodeTarget.DT2 else 1.0):
        return DecodeTarget.DT2
    if new_estimate >= threshold_low_bps * (UPGRADE_HYSTERESIS if current < DecodeTarget.DT1 else 1.0):
        return DecodeTarget.DT1
    return DecodeTarget.DT0


@dataclass
class _DownlinkState:
    """EWMA of one receiver's bandwidth estimates for one sender."""

    ewma_bps: float
    last_update: float
    samples: int = 1


class DownlinkFilter:
    """Selects, per sender, the best-performing downlink (filter *f* in Fig. 8).

    The switch agent feeds every REMB it copies from the data plane into
    :meth:`observe`; :meth:`best_receiver` returns the receiver whose EWMA
    estimate is currently highest for a given sender.  :meth:`reselect`
    reports whether the selection changed since the last call, which is when
    the agent must reconfigure the data plane's feedback-forwarding rules.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        # (sender_id, receiver_id) -> state
        self._state: Dict[Tuple[str, str], _DownlinkState] = {}
        self._selected: Dict[str, str] = {}

    def observe(self, sender_id: str, receiver_id: str, estimate_bps: float, now: float) -> None:
        """Record a REMB estimate from ``receiver_id`` about ``sender_id``'s stream."""
        key = (sender_id, receiver_id)
        state = self._state.get(key)
        if state is None:
            self._state[key] = _DownlinkState(ewma_bps=estimate_bps, last_update=now)
            return
        state.ewma_bps = self.alpha * estimate_bps + (1.0 - self.alpha) * state.ewma_bps
        state.last_update = now
        state.samples += 1

    def estimate(self, sender_id: str, receiver_id: str) -> Optional[float]:
        state = self._state.get((sender_id, receiver_id))
        return None if state is None else state.ewma_bps

    def receivers_for(self, sender_id: str) -> List[str]:
        return [receiver for (sender, receiver) in self._state if sender == sender_id]

    def best_receiver(self, sender_id: str) -> Optional[Tuple[str, float]]:
        """The receiver with the highest EWMA estimate for this sender."""
        best: Optional[Tuple[str, float]] = None
        for (sender, receiver), state in self._state.items():
            if sender != sender_id:
                continue
            if best is None or state.ewma_bps > best[1]:
                best = (receiver, state.ewma_bps)
        return best

    def reselect(self, sender_id: str) -> Tuple[Optional[str], bool]:
        """Pick the best downlink for a sender.

        Returns ``(receiver_id, changed)`` where ``changed`` indicates that the
        selection differs from the previous one (and the data plane's REMB
        forwarding rules must be updated).
        """
        best = self.best_receiver(sender_id)
        if best is None:
            return None, False
        receiver_id, _ = best
        changed = self._selected.get(sender_id) != receiver_id
        self._selected[sender_id] = receiver_id
        return receiver_id, changed

    def selected_receiver(self, sender_id: str) -> Optional[str]:
        return self._selected.get(sender_id)

    def forget_receiver(self, receiver_id: str) -> None:
        """Remove all state about a receiver that left the meeting."""
        for key in [k for k in self._state if k[1] == receiver_id]:
            del self._state[key]
        for sender in [s for s, r in self._selected.items() if r == receiver_id]:
            del self._selected[sender]

    def forget_sender(self, sender_id: str) -> None:
        for key in [k for k in self._state if k[0] == sender_id]:
            del self._state[key]
        self._selected.pop(sender_id, None)


@dataclass
class DecodeTargetTracker:
    """Per (sender, receiver) decode-target state maintained by the agent."""

    select_fn: SelectDecodeTargetFn = select_decode_target
    history_length: int = 16
    _targets: Dict[Tuple[str, str], DecodeTarget] = field(default_factory=dict)
    _history: Dict[Tuple[str, str], List[float]] = field(default_factory=dict)

    def current(self, sender_id: str, receiver_id: str) -> DecodeTarget:
        return self._targets.get((sender_id, receiver_id), DecodeTarget.DT2)

    def update(self, sender_id: str, receiver_id: str, new_estimate_bps: float) -> Tuple[DecodeTarget, bool]:
        """Feed a new estimate; returns ``(decode_target, changed)``."""
        key = (sender_id, receiver_id)
        history = self._history.setdefault(key, [])
        current = self._targets.get(key, DecodeTarget.DT2)
        new_target = self.select_fn(current, tuple(history), new_estimate_bps)
        history.append(new_estimate_bps)
        if len(history) > self.history_length:
            del history[: len(history) - self.history_length]
        changed = new_target != current
        self._targets[key] = new_target
        return new_target, changed

    def forget(self, participant_id: str) -> None:
        for key in [k for k in self._targets if participant_id in k]:
            self._targets.pop(key, None)
            self._history.pop(key, None)

    def export_for(self, participant_ids) -> List[Tuple[str, str, int, Tuple[float, ...]]]:
        """Image the decode-target state of pairs touching ``participant_ids``
        as plain records (sender, receiver, target value, estimate history) —
        the agent-side half of a cross-SFU meeting migration snapshot.
        Deterministically ordered so identical trackers export identically."""
        ids = set(participant_ids)
        records: List[Tuple[str, str, int, Tuple[float, ...]]] = []
        for key in sorted(k for k in self._targets if k[0] in ids or k[1] in ids):
            records.append(
                (key[0], key[1], int(self._targets[key]), tuple(self._history.get(key, ())))
            )
        return records

    def adopt(self, records) -> None:
        """Restore records produced by :meth:`export_for` into this tracker,
        so a migrated meeting's next REMB continues the same hysteresis state
        instead of re-deciding from the DT2 default."""
        for sender_id, receiver_id, target, history in records:
            key = (sender_id, receiver_id)
            self._targets[key] = DecodeTarget(target)
            self._history[key] = list(history)
