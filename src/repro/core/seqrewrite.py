"""Sequence-number rewriting heuristics (paper §6.2, Figures 12 and 18).

When Scallop suppresses packets for rate adaptation it opens gaps in the RTP
sequence space that a WebRTC receiver would misinterpret as network loss.  The
egress pipeline therefore rewrites sequence numbers so that *intentional* gaps
disappear while *legitimate* gaps (real network loss on the sender's uplink)
are preserved.  Perfect rewriting is impossible when suppression coincides
with loss and reordering, so Scallop uses heuristics with one hard rule:
**never emit a duplicate sequence number** (a duplicate breaks the decoder and
freezes the video; an extra gap merely triggers a retransmission).

Two variants are implemented, as in the paper:

* :class:`SequenceRewriterLowMemory` (S-LM) keeps only the highest observed
  sequence number, the highest frame number, and the running offset.  Gaps in
  arrivals are attributed to the configured skip cadence.
* :class:`SequenceRewriterLowRetransmission` (S-LR) additionally tracks the
  boundaries of the most recent frame, whether it ended, and the highest
  suppressed frame, allowing it to treat intra-frame gaps as genuine loss and
  to rewrite late packets of the current frame correctly.

Both classes implement the :class:`repro.dataplane.pipeline.SequenceRewriter`
protocol and hold only a handful of integers, mirroring their register-memory
footprint on the Tofino.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..rtp.packet import SEQ_MOD, seq_add, seq_delta


@dataclass(frozen=True)
class SkipCadence:
    """The control plane's description of which share of packets is suppressed.

    ``suppressed_per_group`` out of every ``group_size`` consecutive media
    packets are expected to be suppressed.  For L1T3, dropping the top temporal
    layer (30 -> 15 fps) suppresses half of the frames, hence roughly half of
    the packets, i.e. ``SkipCadence(1, 2)``; dropping to 7.5 fps gives
    ``SkipCadence(3, 4)``.  ``SkipCadence(0, 1)`` means nothing is suppressed.
    """

    suppressed_per_group: int
    group_size: int

    def __post_init__(self) -> None:
        if self.group_size <= 0:
            raise ValueError("group size must be positive")
        if not 0 <= self.suppressed_per_group <= self.group_size:
            raise ValueError("suppressed count cannot exceed the group size")

    @property
    def ratio(self) -> float:
        return self.suppressed_per_group / self.group_size

    @classmethod
    def for_decode_target(cls, decode_target: int) -> "SkipCadence":
        """Cadence implied by an L1T3 decode target (2 = nothing suppressed)."""
        if decode_target >= 2:
            return cls(0, 1)
        if decode_target == 1:
            return cls(1, 2)
        return cls(3, 4)


class _RewriterBase:
    """Shared bookkeeping for the rewriting heuristics."""

    def __init__(self, cadence: SkipCadence) -> None:
        self.cadence = cadence
        self.offset = 0
        self.highest_seq: Optional[int] = None
        self.highest_frame: Optional[int] = None
        self.packets_seen = 0
        self.packets_forwarded = 0
        self.packets_suppressed = 0
        self.packets_dropped_for_safety = 0
        self._emitted: set = set()
        # the most advanced rewritten number emitted so far, in wrap-aware
        # stream order; anchors the duplicate-guard eviction below
        self._emit_horizon: Optional[int] = None
        # fractional carry for cadence-based gap attribution
        self._gap_carry = 0.0

    # -- helpers -------------------------------------------------------------------

    def _emit(self, seq: int) -> Optional[int]:
        return self._register((seq - self.offset) % SEQ_MOD)

    def _register(self, rewritten: int) -> Optional[int]:
        """Emit an already-rewritten number unless it would be a duplicate."""
        if rewritten in self._emitted:
            # never emit duplicates: drop instead (paper's hard rule)
            self.packets_dropped_for_safety += 1
            return None
        self._emitted.add(rewritten)
        if self._emit_horizon is None or seq_delta(rewritten, self._emit_horizon) > 0:
            self._emit_horizon = rewritten
        if len(self._emitted) > 4096:
            # Bounded like hardware state; forget the distant past.  "Distant"
            # is measured as circular distance behind the emission horizon: a
            # plain numeric sort breaks across the 65535 -> 0 wrap, where it
            # would keep the stale pre-wrap entries (which then collide with
            # fresh emissions one lap later) and evict the recent ones.
            horizon = self._emit_horizon
            self._emitted = set(
                sorted(self._emitted, key=lambda s: (horizon - s) % SEQ_MOD)[:2048]
            )
        self.packets_forwarded += 1
        return rewritten

    def _cadence_guess(self, missing: int) -> int:
        """How many of ``missing`` unseen packets the cadence says were suppressed."""
        exact = missing * self.cadence.ratio + self._gap_carry
        guess = int(exact)
        self._gap_carry = exact - guess
        return min(missing, guess)

    # -- shared statistics ------------------------------------------------------------

    @property
    def state_cells(self) -> int:
        """Number of register cells this heuristic occupies (per stream)."""
        raise NotImplementedError


class SequenceRewriterLowMemory(_RewriterBase):
    """S-LM: three registers per stream (highest seq, highest frame, offset)."""

    #: register cells per stream: highest seq, highest frame, offset
    STATE_CELLS = 3

    def on_packet(self, sequence_number: int, frame_number: int, forward: bool) -> Optional[int]:
        self.packets_seen += 1
        if not forward:
            self.packets_suppressed += 1

        if self.highest_seq is None:
            self.highest_seq = sequence_number
            self.highest_frame = frame_number
            if not forward:
                self.offset += 1
                return None
            return self._emit(sequence_number)

        delta = seq_delta(sequence_number, self.highest_seq)

        if delta == 1:
            # consecutive packet
            self.highest_seq = sequence_number
            self.highest_frame = frame_number
            if not forward:
                self.offset += 1
                return None
            return self._emit(sequence_number)

        if delta > 1:
            # gap: attribute part of it to the skip cadence
            missing = delta - 1
            self.offset += self._cadence_guess(missing)
            self.highest_seq = sequence_number
            self.highest_frame = frame_number
            if not forward:
                self.offset += 1
                return None
            return self._emit(sequence_number)

        # delta <= 0: an older (reordered or retransmitted) packet
        if delta == -1 or delta == 0:
            if not forward:
                return None
            return self._emit(sequence_number)
        # further in the past: cannot safely reconstruct its offset; drop
        self.packets_dropped_for_safety += 1
        return None

    @property
    def state_cells(self) -> int:
        return self.STATE_CELLS


class SequenceRewriterLowRetransmission(_RewriterBase):
    """S-LR: six registers per stream; fewer erroneous gaps, more memory.

    Extra state relative to S-LM: first and highest sequence number of the
    latest observed frame, whether that frame ended, and the highest
    suppressed frame number.
    """

    #: register cells per stream (the six tables of §6.3)
    STATE_CELLS = 6

    def __init__(self, cadence: SkipCadence) -> None:
        super().__init__(cadence)
        self.frame_first_seq: Optional[int] = None
        self.frame_highest_seq: Optional[int] = None
        self.frame_number_current: Optional[int] = None
        self.frame_ended: bool = True
        self.highest_suppressed_frame: Optional[int] = None
        self._frame_offsets: Dict[int, int] = {}
        # running estimate of packets per frame, used to attribute gaps that
        # span whole (suppressed) frames; a slowly decaying maximum is robust
        # against frames observed only partially because of uplink loss
        self._packets_per_frame_estimate = 1.0
        self._packets_in_current_frame = 0
        self._current_frame_suppressed = False

    def on_packet(self, sequence_number: int, frame_number: int, forward: bool) -> Optional[int]:
        self.packets_seen += 1
        if not forward:
            self.packets_suppressed += 1
            # frame numbers are 16-bit like sequence numbers, so "highest"
            # must be wrap-aware: a plain max() freezes at 65535 after the
            # frame counter wraps (~18 min at 60 fps) and then misclassifies
            # every late packet against the stale pre-wrap value
            if self.highest_suppressed_frame is None or seq_delta(
                frame_number, self.highest_suppressed_frame
            ) > 0:
                self.highest_suppressed_frame = frame_number

        if self.highest_seq is None:
            self._start_frame(sequence_number, frame_number)
            self.highest_seq = sequence_number
            self.highest_frame = frame_number
            if not forward:
                self.offset += 1
                return None
            return self._emit(sequence_number)

        delta = seq_delta(sequence_number, self.highest_seq)

        if delta >= 1:
            missing = delta - 1
            if missing > 0:
                if frame_number == self.frame_number_current and not self.frame_ended:
                    if self._current_frame_suppressed or not forward:
                        # the gap lies inside a frame this receiver does not
                        # get anyway: the missing packets are invisible to it
                        self.offset += missing
                    # otherwise the gap inside a forwarded frame can only be
                    # genuine loss (a frame is never partially suppressed)
                else:
                    # the gap spans at least one frame boundary: attribute the
                    # share belonging to suppressed frames (whole skipped
                    # frames per the cadence, the unseen tail of a suppressed
                    # previous frame, and the unseen head of a suppressed new
                    # frame), and preserve the rest as genuine loss.
                    self.offset += self._frame_gap_guess(missing, frame_number, forward)
            if frame_number != self.frame_number_current:
                self._start_frame(sequence_number, frame_number)
            else:
                self.frame_highest_seq = sequence_number
                self._packets_in_current_frame += 1
            if not forward:
                self._current_frame_suppressed = True
            self.highest_seq = sequence_number
            if self.highest_frame is None or seq_delta(frame_number, self.highest_frame) > 0:
                self.highest_frame = frame_number
            if not forward:
                self.offset += 1
                return None
            return self._emit(sequence_number)

        # delta <= 0: late packet
        if not forward:
            return None
        if frame_number == self.frame_number_current or frame_number in self._frame_offsets:
            # we still know the offset that applied when this frame started
            offset = self._frame_offsets.get(frame_number, self.offset)
            return self._register((sequence_number - offset) % SEQ_MOD)
        if self.highest_suppressed_frame is not None and seq_delta(
            frame_number, self.highest_suppressed_frame
        ) <= 0:
            # late packet of a frame that may have been suppressed: drop silently
            return None
        if delta >= -2:
            return self._emit(sequence_number)
        self.packets_dropped_for_safety += 1
        return None

    def _frame_gap_guess(self, missing: int, new_frame_number: int, forward: bool) -> int:
        """How many of ``missing`` unseen packets belonged to suppressed frames.

        The number of whole frames skipped between the last observed frame and
        the new one is known from the frame numbers; the cadence bounds how
        many of them can have been suppressed, and the running packets-per-
        frame estimate converts frames to packets.  The unseen tail of a
        suppressed previous frame and the unseen head of a suppressed new
        frame are also invisible to the receiver and therefore attributed.
        """
        if self.frame_number_current is None:
            return self._cadence_guess(missing)
        frame_advance = seq_delta(new_frame_number, self.frame_number_current)
        if frame_advance <= 0 or frame_advance - 1 > 1_000:
            # an implausible jump (backwards, reordered, or a gap behind an
            # already-ended frame): treat the whole gap as loss, not a guess
            return 0
        skipped_frames = frame_advance - 1
        per_frame = max(1, round(self._packets_per_frame_estimate))
        suppressed_frames = min(skipped_frames, math.ceil(skipped_frames * self.cadence.ratio))
        attribution = suppressed_frames * per_frame
        if self._current_frame_suppressed:
            attribution += max(0, per_frame - self._packets_in_current_frame)
        if not forward:
            attribution += per_frame - 1
        return min(missing, attribution)

    def _start_frame(self, sequence_number: int, frame_number: int) -> None:
        if self._packets_in_current_frame > 0:
            self._packets_per_frame_estimate = max(
                float(self._packets_in_current_frame), self._packets_per_frame_estimate * 0.98
            )
        self._packets_in_current_frame = 1
        self._current_frame_suppressed = False
        self.frame_first_seq = sequence_number
        self.frame_highest_seq = sequence_number
        self.frame_number_current = frame_number
        self.frame_ended = False
        self._frame_offsets[frame_number] = self.offset
        if len(self._frame_offsets) > 8:
            # keep the 8 most recent frames in wrap-aware order; a numeric
            # sort would evict the fresh post-wrap (low-numbered) frames
            for old in sorted(
                self._frame_offsets, key=lambda f: (frame_number - f) % SEQ_MOD
            )[8:]:
                del self._frame_offsets[old]

    def mark_frame_ended(self) -> None:
        """Called when the end-of-frame packet has been observed."""
        self.frame_ended = True

    @property
    def state_cells(self) -> int:
        return self.STATE_CELLS


# --------------------------------------------------------------------------- packed state codec
#
# The sharded pipeline's process executor ships mutated rewriter state back to
# the coordinator after every batch.  Pickling the rewriter objects costs
# hundreds of bytes per stream (class references, per-int object overhead, the
# duplicate-guard set as a pickled Python set); this codec packs the exact
# register-file contents into a flat struct layout instead — which is also the
# honest model of what the hardware would DMA: the registers are integers, not
# Python objects.
#
# Layout (big-endian, see ``_STATE_HEAD``):
#
#   u8   class tag (0 = S-LM, 1 = S-LR)
#   u16  cadence.suppressed_per_group,  u16 cadence.group_size
#   q    offset, packets_seen, packets_forwarded, packets_suppressed,
#        packets_dropped_for_safety                       (5 signed 64-bit)
#   i    highest_seq, highest_frame, emit_horizon          (-1 encodes None)
#   d    gap_carry
#   u16  len(emitted) + that many u16 sequence numbers
#
# followed, for S-LR only, by ``_STATE_LR``:
#
#   i    frame_first_seq, frame_highest_seq, frame_number_current,
#        highest_suppressed_frame                          (-1 encodes None)
#   B    frame_ended,  B current_frame_suppressed
#   d    packets_per_frame_estimate,  q packets_in_current_frame
#   u8   len(frame_offsets) + that many (u16 frame, q offset) pairs

_STATE_HEAD = struct.Struct("!BHH5q3id")
_STATE_LR = struct.Struct("!4iBBdqB")
_U16 = struct.Struct("!H")
_FRAME_OFFSET = struct.Struct("!Hq")

def _opt(value: Optional[int]) -> int:
    return -1 if value is None else value


def _unopt(value: int) -> Optional[int]:
    return None if value < 0 else value


def pack_rewriter_state(rewriter: Union["SequenceRewriterLowMemory", "SequenceRewriterLowRetransmission"]) -> bytes:
    """Pack a rewriter's full per-stream state into a flat byte record.

    Raises :class:`TypeError` for rewriter classes outside the paper's two
    variants (callers fall back to pickle for exotic implementations of the
    :class:`~repro.dataplane.pipeline.SequenceRewriter` protocol).
    """
    if type(rewriter) is SequenceRewriterLowMemory:
        tag = 0
    elif type(rewriter) is SequenceRewriterLowRetransmission:
        tag = 1
    else:
        raise TypeError(f"no packed codec for rewriter type {type(rewriter).__name__}")
    emitted = rewriter._emitted
    out = bytearray(
        _STATE_HEAD.pack(
            tag,
            rewriter.cadence.suppressed_per_group,
            rewriter.cadence.group_size,
            rewriter.offset,
            rewriter.packets_seen,
            rewriter.packets_forwarded,
            rewriter.packets_suppressed,
            rewriter.packets_dropped_for_safety,
            _opt(rewriter.highest_seq),
            _opt(rewriter.highest_frame),
            _opt(rewriter._emit_horizon),
            rewriter._gap_carry,
        )
    )
    out += _U16.pack(len(emitted))
    for seq in emitted:
        out += _U16.pack(seq)
    if tag == 1:
        out += _STATE_LR.pack(
            _opt(rewriter.frame_first_seq),
            _opt(rewriter.frame_highest_seq),
            _opt(rewriter.frame_number_current),
            _opt(rewriter.highest_suppressed_frame),
            int(rewriter.frame_ended),
            int(rewriter._current_frame_suppressed),
            rewriter._packets_per_frame_estimate,
            rewriter._packets_in_current_frame,
            len(rewriter._frame_offsets),
        )
        for frame, offset in rewriter._frame_offsets.items():
            out += _FRAME_OFFSET.pack(frame, offset)
    return bytes(out)


def unpack_rewriter_state(
    data: bytes,
) -> Union["SequenceRewriterLowMemory", "SequenceRewriterLowRetransmission"]:
    """Reconstruct a rewriter from :func:`pack_rewriter_state` output.

    The round trip is exact: the clone and the original produce identical
    ``on_packet`` outputs for any subsequent event sequence (property-tested
    in ``tests/test_shard_transport.py``).
    """
    (
        tag,
        suppressed_per_group,
        group_size,
        offset,
        packets_seen,
        packets_forwarded,
        packets_suppressed,
        packets_dropped_for_safety,
        highest_seq,
        highest_frame,
        emit_horizon,
        gap_carry,
    ) = _STATE_HEAD.unpack_from(data, 0)
    cursor = _STATE_HEAD.size
    (emitted_count,) = _U16.unpack_from(data, cursor)
    cursor += _U16.size
    emitted = set()
    for _ in range(emitted_count):
        emitted.add(_U16.unpack_from(data, cursor)[0])
        cursor += _U16.size
    cls = SequenceRewriterLowMemory if tag == 0 else SequenceRewriterLowRetransmission
    rewriter = cls(SkipCadence(suppressed_per_group, group_size))
    rewriter.offset = offset
    rewriter.packets_seen = packets_seen
    rewriter.packets_forwarded = packets_forwarded
    rewriter.packets_suppressed = packets_suppressed
    rewriter.packets_dropped_for_safety = packets_dropped_for_safety
    rewriter.highest_seq = _unopt(highest_seq)
    rewriter.highest_frame = _unopt(highest_frame)
    rewriter._emit_horizon = _unopt(emit_horizon)
    rewriter._gap_carry = gap_carry
    rewriter._emitted = emitted
    if tag == 1:
        (
            frame_first_seq,
            frame_highest_seq,
            frame_number_current,
            highest_suppressed_frame,
            frame_ended,
            current_frame_suppressed,
            packets_per_frame_estimate,
            packets_in_current_frame,
            n_frame_offsets,
        ) = _STATE_LR.unpack_from(data, cursor)
        cursor += _STATE_LR.size
        frame_offsets: Dict[int, int] = {}
        for _ in range(n_frame_offsets):
            frame, frame_offset = _FRAME_OFFSET.unpack_from(data, cursor)
            frame_offsets[frame] = frame_offset
            cursor += _FRAME_OFFSET.size
        rewriter.frame_first_seq = _unopt(frame_first_seq)
        rewriter.frame_highest_seq = _unopt(frame_highest_seq)
        rewriter.frame_number_current = _unopt(frame_number_current)
        rewriter.highest_suppressed_frame = _unopt(highest_suppressed_frame)
        rewriter.frame_ended = bool(frame_ended)
        rewriter._current_frame_suppressed = bool(current_frame_suppressed)
        rewriter._packets_per_frame_estimate = packets_per_frame_estimate
        rewriter._packets_in_current_frame = packets_in_current_frame
        rewriter._frame_offsets = frame_offsets
    return rewriter


def extract_flow_state(
    trackers, indices: Sequence[int]
) -> Dict[int, Optional[bytes]]:
    """Extract one flow's rewriter register images for a live migration.

    ``trackers`` is any register array exposing ``peek(index)``; ``indices``
    are the flow's stream-tracker cells (one per adapted receiver, from
    :meth:`~repro.dataplane.pipeline.PipelineControlPlane.tracker_indices_for_ssrc`).
    Returns ``index -> packed image`` (``None`` for empty cells), the exact
    payload a migration ships between shards.  Rewriter classes outside the
    packed codec raise :class:`TypeError` — migration callers fall back to
    shipping the object itself (serial mode) or pickling (process mode).
    """
    return {
        index: (None if rewriter is None else pack_rewriter_state(rewriter))
        for index, rewriter in ((index, trackers.peek(index)) for index in indices)
    }


def clone_rewriter(
    rewriter: Union["SequenceRewriterLowMemory", "SequenceRewriterLowRetransmission"],
) -> Union["SequenceRewriterLowMemory", "SequenceRewriterLowRetransmission"]:
    """Exact clone through the packed register image.

    The clone and the original produce identical ``on_packet`` outputs for any
    subsequent event sequence — used by migration tests to snapshot in-flight
    state (mid-wraparound included) at the moment a flow changes shards.
    """
    return unpack_rewriter_state(pack_rewriter_state(rewriter))


def ideal_rewrite_sequence(
    events: Sequence[Tuple[int, bool, bool]],
) -> List[Optional[int]]:
    """Positional oracle: the ideal rewritten number for every event in order.

    ``events`` is the ground-truth per-packet history in original sequence
    order: ``(sequence_number, suppressed_by_sfu, lost_before_sfu)``.  The
    ideal rewrite removes exactly the suppressed packets from the sequence
    space — lost packets keep their (rewritten) slot so the receiver NACKs
    them, which is the legitimate behaviour.

    Unlike :func:`ideal_rewrite_map` this handles streams longer than one
    sequence wrap (> 65536 packets), where raw sequence numbers repeat and can
    no longer serve as dictionary keys.
    """
    ideal: List[Optional[int]] = []
    suppressed_so_far = 0
    for sequence_number, suppressed, _lost in events:
        if suppressed:
            ideal.append(None)
            suppressed_so_far += 1
        else:
            ideal.append((sequence_number - suppressed_so_far) % SEQ_MOD)
    return ideal


def ideal_rewrite_map(
    events: Sequence[Tuple[int, bool, bool]],
) -> Dict[int, Optional[int]]:
    """The oracle keyed by original sequence number (streams up to one wrap).

    Returns a map from original sequence number to the ideal rewritten number,
    or ``None`` for packets the receiver should never see (suppressed).  For
    wrap-spanning histories use :func:`ideal_rewrite_sequence`.
    """
    ideal = ideal_rewrite_sequence(events)
    return {event[0]: rewritten for event, rewritten in zip(events, ideal)}
