"""Replication-tree construction, meeting installation, and live migration.

This module is the piece of the switch agent that maps VCA entities (meetings,
senders, receivers) onto the PRE hierarchy (§6.1 of the paper):

* **TWO_PARTY** — no replication tree; the sender's stream is unicast to its
  single peer.
* **NRA** — one tree shared by up to ``m`` meetings; every participant is an
  L1 node, L1 XIDs separate the meetings, L2 XIDs suppress the sender's own
  copy.
* **RA_R** — one tree per media quality per meeting group; a packet of
  temporal layer ``l`` is replicated through the layer-``l`` tree, which
  contains the receivers whose decode target includes that layer.
* **RA_SR** — per (sender-pair, quality) trees, the least aggregated design.

The :class:`ReplicationManager` installs meetings into a
:class:`~repro.dataplane.pipeline.ScallopPipeline`, keeps the per-meeting tree
state, and migrates meetings between designs without disrupting forwarding
(make-before-break: build the new trees, repoint the ingress entries, then
deallocate the old trees).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dataplane.pipeline import (
    ForwardingMode,
    ReplicaTarget,
    ScallopPipeline,
    StreamForwardingEntry,
)
from ..dataplane.pre import L2Port
from ..netsim.datagram import Address
from ..rtp.av1 import DecodeTarget
from .capacity import ReplicationDesign


@dataclass
class ParticipantEndpoint:
    """What the replication layer needs to know about one participant."""

    participant_id: str
    address: Address
    egress_port: int
    audio_ssrc: Optional[int] = None
    video_ssrc: Optional[int] = None
    #: Inter-SFU trunk endpoint (``repro.cluster``): the "participant" is a
    #: peer SFU subscribing to this meeting's media.  It contributes no media
    #: of its own (no SSRCs, so no ingress stream entry is ever installed for
    #: it) and receives exactly one copy of every local sender's stream; the
    #: peer's own PRE fans that copy out to its local receivers.
    trunk: bool = False

    def media_ssrcs(self) -> List[Tuple[str, int]]:
        ssrcs: List[Tuple[str, int]] = []
        if self.audio_ssrc is not None:
            ssrcs.append(("audio", self.audio_ssrc))
        if self.video_ssrc is not None:
            ssrcs.append(("video", self.video_ssrc))
        return ssrcs


@dataclass
class _TreeState:
    """One allocated multicast tree and its membership bookkeeping."""

    mgid: int
    layer: Optional[int] = None                       # RA designs: temporal layer
    node_ids: Dict[str, int] = field(default_factory=dict)   # participant -> node id
    rids: Dict[str, int] = field(default_factory=dict)        # participant -> RID
    xids: Dict[str, int] = field(default_factory=dict)        # meeting -> L1 XID


@dataclass
class MeetingReplicationState:
    """Everything the agent tracks about one installed meeting."""

    meeting_id: str
    design: ReplicationDesign
    participants: Dict[str, ParticipantEndpoint] = field(default_factory=dict)
    trees: List[_TreeState] = field(default_factory=list)
    l1_xid: Optional[int] = None       # this meeting's XID inside shared trees
    tree_group: Optional[str] = None   # id of the NRA/RA-R group this meeting shares

    def addresses(self) -> List[Address]:
        return [p.address for p in self.participants.values()]


class ReplicationManager:
    """Builds and maintains replication trees for meetings on one pipeline."""

    def __init__(self, pipeline: ScallopPipeline) -> None:
        self.pipeline = pipeline
        self.meetings: Dict[str, MeetingReplicationState] = {}
        self._next_port = 1
        self._next_rid = itertools.count(1)
        self._port_by_participant: Dict[str, int] = {}
        # NRA / RA-R tree groups with a free meeting slot: group id -> (trees, used meetings)
        self._open_groups: Dict[ReplicationDesign, List[str]] = {ReplicationDesign.NRA: [], ReplicationDesign.RA_R: []}
        self._groups: Dict[str, Dict[str, object]] = {}
        self._group_counter = itertools.count(1)
        self.migrations_performed = 0

    # ------------------------------------------------------------------ installation

    def install_meeting(
        self,
        meeting_id: str,
        participants: Sequence[ParticipantEndpoint],
        design: Optional[ReplicationDesign] = None,
        qualities: int = 3,
    ) -> MeetingReplicationState:
        """Install a meeting under the given (or automatically chosen) design."""
        if meeting_id in self.meetings:
            raise ValueError(f"meeting already installed: {meeting_id}")
        chosen = design or self._auto_design(len(participants))
        state = MeetingReplicationState(meeting_id=meeting_id, design=chosen)
        for participant in participants:
            state.participants[participant.participant_id] = participant
            self._assign_port(participant)
        self.meetings[meeting_id] = state
        self._build(state, qualities)
        self._install_stream_entries(state)
        return state

    def remove_meeting(self, meeting_id: str) -> None:
        """Tear down a meeting's trees and ingress entries."""
        state = self.meetings.pop(meeting_id, None)
        if state is None:
            return
        self._remove_stream_entries(state)
        self._teardown_trees(state)

    def add_participant(self, meeting_id: str, participant: ParticipantEndpoint) -> None:
        """Add a participant to a running meeting (controller join event)."""
        state = self._require(meeting_id)
        self._remove_stream_entries(state)
        state.participants[participant.participant_id] = participant
        self._assign_port(participant)
        self._teardown_trees(state)
        self._build(state, qualities=3)
        self._install_stream_entries(state)

    def remove_participant(self, meeting_id: str, participant_id: str) -> None:
        state = self._require(meeting_id)
        if participant_id not in state.participants:
            return
        self._remove_stream_entries(state)
        del state.participants[participant_id]
        self._teardown_trees(state)
        if len(state.participants) >= 2:
            if state.design == ReplicationDesign.TWO_PARTY and len(state.participants) != 2:
                state.design = ReplicationDesign.NRA
            self._build(state, qualities=3)
            self._install_stream_entries(state)
        elif not state.participants:
            del self.meetings[meeting_id]
        # a single remaining participant has nobody to forward to: keep the
        # meeting record but install no forwarding state

    # ------------------------------------------------------------------ migration

    def migrate(self, meeting_id: str, new_design: ReplicationDesign, qualities: int = 3) -> None:
        """Migrate a meeting to a different replication design without disruption.

        Follows the paper's three steps: build the new trees, repoint the
        ingress rules, then deallocate the old trees.
        """
        state = self._require(meeting_id)
        if state.design == new_design:
            return
        old_trees = list(state.trees)
        old_group = state.tree_group
        state.trees = []
        state.design = new_design
        state.tree_group = None
        state.l1_xid = None
        # 1. create the new replication trees
        self._build(state, qualities)
        # 2. update data-plane rules to point at the new trees
        self._install_stream_entries(state)
        # 3. deallocate the old trees
        self._release_trees(old_trees, old_group, state.meeting_id)
        self.migrations_performed += 1

    # ------------------------------------------------------------------ design construction

    def _auto_design(self, num_participants: int) -> ReplicationDesign:
        return ReplicationDesign.TWO_PARTY if num_participants == 2 else ReplicationDesign.NRA

    def _build(self, state: MeetingReplicationState, qualities: int) -> None:
        if len(state.participants) < 2:
            return  # nothing to forward yet
        if state.design == ReplicationDesign.TWO_PARTY:
            if len(state.participants) != 2:
                raise ValueError("the two-party design requires exactly two participants")
            return  # no trees at all
        if state.design == ReplicationDesign.NRA:
            self._build_shared_group(state, layers=[None])
        elif state.design == ReplicationDesign.RA_R:
            self._build_shared_group(state, layers=list(range(qualities)))
        else:  # RA_SR
            self._build_ra_sr(state, qualities)

    def _build_shared_group(self, state: MeetingReplicationState, layers: List[Optional[int]]) -> None:
        """NRA / RA-R: join (or open) a tree group shared by up to m meetings."""
        design = state.design
        meetings_per_tree = self.pipeline.capacities.meetings_per_tree
        group_id = None
        for candidate in self._open_groups[design]:
            group = self._groups[candidate]
            if len(group["meetings"]) < meetings_per_tree and group["layers"] == layers:  # type: ignore[index]
                group_id = candidate
                break
        if group_id is None:
            group_id = f"{design.value}-group-{next(self._group_counter)}"
            trees = [_TreeState(mgid=self.pipeline.pre.create_tree(), layer=layer) for layer in layers]
            self._groups[group_id] = {"trees": trees, "meetings": set(), "layers": layers}
            self._open_groups[design].append(group_id)
        group = self._groups[group_id]
        group["meetings"].add(state.meeting_id)  # type: ignore[union-attr]
        if len(group["meetings"]) >= meetings_per_tree:  # type: ignore[arg-type]
            if group_id in self._open_groups[design]:
                self._open_groups[design].remove(group_id)

        state.tree_group = group_id
        state.l1_xid = len(group["meetings"])  # type: ignore[arg-type]
        state.trees = list(group["trees"])  # type: ignore[arg-type]

        for tree in state.trees:
            for participant in state.participants.values():
                rid = next(self._next_rid) % self.pipeline.capacities.max_rids_per_tree
                node_id = self.pipeline.pre.add_node(
                    tree.mgid,
                    rid=rid,
                    ports=[L2Port(port=participant.egress_port, l2_xid=participant.egress_port)],
                    l1_xid=state.l1_xid,
                    prune_enabled=True,
                )
                tree.node_ids[f"{state.meeting_id}:{participant.participant_id}"] = node_id
                tree.rids[f"{state.meeting_id}:{participant.participant_id}"] = rid
                self.pipeline.install_replica_target(
                    tree.mgid,
                    rid,
                    ReplicaTarget(address=participant.address, participant_id=participant.participant_id),
                )

    def _build_ra_sr(self, state: MeetingReplicationState, qualities: int) -> None:
        """RA-SR: one tree per (pair of senders, quality)."""
        participants = list(state.participants.values())
        sender_pairs = [participants[i : i + 2] for i in range(0, len(participants), 2)]
        for pair in sender_pairs:
            for layer in range(qualities):
                tree = _TreeState(mgid=self.pipeline.pre.create_tree(), layer=layer)
                tree.xids = {p.participant_id: index + 1 for index, p in enumerate(pair)}
                for participant in participants:
                    rid = next(self._next_rid) % self.pipeline.capacities.max_rids_per_tree
                    node_id = self.pipeline.pre.add_node(
                        tree.mgid,
                        rid=rid,
                        ports=[L2Port(port=participant.egress_port, l2_xid=participant.egress_port)],
                        l1_xid=None,
                        prune_enabled=False,
                    )
                    key = f"{state.meeting_id}:{participant.participant_id}"
                    tree.node_ids[key] = node_id
                    tree.rids[key] = rid
                    self.pipeline.install_replica_target(
                        tree.mgid,
                        rid,
                        ReplicaTarget(address=participant.address, participant_id=participant.participant_id),
                    )
                tree.layer = layer
                # remember which senders this tree serves
                tree_senders = tuple(p.participant_id for p in pair)
                tree.xids["__senders__"] = hash(tree_senders) & 0xFFFF
                setattr(tree, "senders", tree_senders)
                state.trees.append(tree)

    # ------------------------------------------------------------------ ingress entries

    def _install_stream_entries(self, state: MeetingReplicationState) -> None:
        if len(state.participants) < 2:
            return  # a lone participant has no receivers to forward to
        for participant in state.participants.values():
            for _kind, ssrc in participant.media_ssrcs():
                entry = self._entry_for_sender(state, participant)
                self.pipeline.install_stream((participant.address, ssrc), entry)

    def _remove_stream_entries(self, state: MeetingReplicationState) -> None:
        for participant in state.participants.values():
            for _kind, ssrc in participant.media_ssrcs():
                self.pipeline.remove_stream((participant.address, ssrc))

    def _entry_for_sender(
        self, state: MeetingReplicationState, sender: ParticipantEndpoint
    ) -> StreamForwardingEntry:
        if state.design == ReplicationDesign.TWO_PARTY:
            peer = next(
                p for p in state.participants.values() if p.participant_id != sender.participant_id
            )
            return StreamForwardingEntry(
                mode=ForwardingMode.UNICAST,
                meeting_id=state.meeting_id,
                sender=sender.address,
                unicast_receiver=peer.address,
            )

        key = f"{state.meeting_id}:{sender.participant_id}"
        if state.design == ReplicationDesign.NRA:
            tree = state.trees[0]
            return StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE,
                meeting_id=state.meeting_id,
                sender=sender.address,
                mgid=tree.mgid,
                l1_xid=self._other_meeting_xid(state),
                rid=tree.rids.get(key),
                l2_xid=sender.egress_port,
            )

        if state.design == ReplicationDesign.RA_R:
            mgid_by_layer = {tree.layer: tree.mgid for tree in state.trees if tree.layer is not None}
            base_tree = state.trees[0]
            return StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE_BY_LAYER,
                meeting_id=state.meeting_id,
                sender=sender.address,
                mgid=base_tree.mgid,
                mgid_by_layer=mgid_by_layer,
                l1_xid=self._other_meeting_xid(state),
                rid=base_tree.rids.get(key),
                l2_xid=sender.egress_port,
            )

        # RA_SR: use the trees whose sender pair contains this sender
        own_trees = [
            tree
            for tree in state.trees
            if sender.participant_id in getattr(tree, "senders", ())
        ] or state.trees
        mgid_by_layer = {tree.layer: tree.mgid for tree in own_trees if tree.layer is not None}
        base_tree = own_trees[0]
        return StreamForwardingEntry(
            mode=ForwardingMode.REPLICATE_BY_LAYER,
            meeting_id=state.meeting_id,
            sender=sender.address,
            mgid=base_tree.mgid,
            mgid_by_layer=mgid_by_layer,
            rid=base_tree.rids.get(f"{state.meeting_id}:{sender.participant_id}"),
            l2_xid=sender.egress_port,
        )

    def _other_meeting_xid(self, state: MeetingReplicationState) -> Optional[int]:
        """The L1 XID to stamp on packets so *other* meetings' nodes are pruned.

        With two meetings per tree, meeting 1 stamps XID 2 and vice-versa; when
        a tree currently holds a single meeting no pruning is necessary.
        """
        if state.tree_group is None or state.l1_xid is None:
            return None
        group = self._groups[state.tree_group]
        if len(group["meetings"]) <= 1:  # type: ignore[arg-type]
            return None
        return 2 if state.l1_xid == 1 else 1

    # ------------------------------------------------------------------ teardown helpers

    def _teardown_trees(self, state: MeetingReplicationState) -> None:
        self._release_trees(state.trees, state.tree_group, state.meeting_id)
        state.trees = []
        state.tree_group = None
        state.l1_xid = None

    def _release_trees(
        self, trees: List[_TreeState], group_id: Optional[str], meeting_id: str
    ) -> None:
        if group_id is not None:
            group = self._groups.get(group_id)
            if group is None:
                return
            group["meetings"].discard(meeting_id)  # type: ignore[union-attr]
            prefix = f"{meeting_id}:"
            for tree in group["trees"]:  # type: ignore[union-attr]
                for key in [k for k in tree.node_ids if k.startswith(prefix)]:
                    self.pipeline.pre.remove_node(tree.mgid, tree.node_ids.pop(key))
                    rid = tree.rids.pop(key, None)
                    if rid is not None:
                        self.pipeline.remove_replica_target(tree.mgid, rid)
            if not group["meetings"]:  # type: ignore[arg-type]
                for tree in group["trees"]:  # type: ignore[union-attr]
                    self.pipeline.pre.destroy_tree(tree.mgid)
                design = ReplicationDesign.NRA if group_id.startswith("nra") else ReplicationDesign.RA_R
                if group_id in self._open_groups.get(design, []):
                    self._open_groups[design].remove(group_id)
                del self._groups[group_id]
            else:
                design = ReplicationDesign.NRA if group_id.startswith("nra") else ReplicationDesign.RA_R
                if group_id not in self._open_groups.setdefault(design, []):
                    self._open_groups[design].append(group_id)
            return
        # privately owned trees (RA-SR)
        for tree in trees:
            for key, node_id in list(tree.node_ids.items()):
                self.pipeline.pre.remove_node(tree.mgid, node_id)
            for key, rid in list(tree.rids.items()):
                self.pipeline.remove_replica_target(tree.mgid, rid)
            self.pipeline.pre.destroy_tree(tree.mgid)

    # ------------------------------------------------------------------ misc helpers

    def _assign_port(self, participant: ParticipantEndpoint) -> None:
        if participant.participant_id not in self._port_by_participant:
            self._port_by_participant[participant.participant_id] = self._next_port
            participant.egress_port = self._next_port
            self._next_port += 1
        else:
            participant.egress_port = self._port_by_participant[participant.participant_id]

    def _require(self, meeting_id: str) -> MeetingReplicationState:
        state = self.meetings.get(meeting_id)
        if state is None:
            raise KeyError(f"unknown meeting: {meeting_id}")
        return state
