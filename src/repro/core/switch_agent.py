"""The Scallop switch agent: the on-switch software control plane (paper §4, §5).

The agent runs on the switch CPU.  It never touches media on the forwarding
path; it only receives *copies* of control packets from the data plane,
analyzes them, and reconfigures the data plane when needed.  Its jobs are:

* answering STUN connectivity checks,
* analyzing extended AV1 dependency descriptors (key frames) to learn the SVC
  template structure of each video stream,
* running the REMB filter function (best-downlink selection, Figure 8) and
  installing the corresponding feedback-forwarding rules,
* running ``selectDecodeTarget`` per (sender, receiver) and installing/updating
  rate-adaptation entries (allowed template ids + sequence-rewrite state), and
* installing meetings into the replication engine and migrating them between
  replication designs as their rate-adaptation needs change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dataplane.pipeline import FeedbackRule, ScallopPipeline
from ..netsim.datagram import Address, Datagram, PayloadKind
from ..rtp.av1 import DecodeTarget, TemplateStructure, extract_dependency_descriptor
from ..rtp.packet import RtpPacket
from ..rtp.wire import PacketView
from ..rtp.rtcp import Nack, PictureLossIndication, ReceiverReport, Remb, RtcpPacket, SenderReport
from ..stun.message import StunMessage, make_binding_response
from .capacity import ReplicationDesign, RewriteVariant
from .rate_control import DecodeTargetTracker, DownlinkFilter, SelectDecodeTargetFn, select_decode_target
from .replication import ParticipantEndpoint, ReplicationManager
from .seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
)

#: Software processing delay of the switch CPU per punted packet.
AGENT_PROCESSING_DELAY_S = 0.0008
#: Period of the best-downlink reselection (the filter function f).
FILTER_RESELECT_INTERVAL_S = 0.5


@dataclass
class AgentCounters:
    """Workload counters for the switch agent (Figure 22, Table 1)."""

    packets_processed: int = 0
    bytes_processed: int = 0
    stun_handled: int = 0
    remb_handled: int = 0
    nack_pli_handled: int = 0
    extended_descriptors_handled: int = 0
    rule_updates: int = 0
    decode_target_changes: int = 0
    migrations: int = 0


@dataclass
class _ParticipantState:
    endpoint: ParticipantEndpoint
    meeting_id: str
    structure: TemplateStructure = field(default_factory=TemplateStructure.l1t3)
    #: Sender registered by the trunk manager: media arrives over an inter-SFU
    #: trunk, so this box must never install REMB-forwarding rules toward the
    #: sender's true client address (the origin SFU runs the filter function
    #: for it; this box only does local egress adaptation).
    remote: bool = False


class SwitchAgent:
    """The control program running on the switch CPU."""

    def __init__(
        self,
        pipeline: ScallopPipeline,
        send_fn: Optional[Callable[[Datagram], None]] = None,
        rewrite_variant: RewriteVariant = RewriteVariant.S_LR,
        select_fn: SelectDecodeTargetFn = select_decode_target,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.pipeline = pipeline
        self.replication = ReplicationManager(pipeline)
        self.downlink_filter = DownlinkFilter()
        self.decode_targets = DecodeTargetTracker(select_fn=select_fn)
        self.rewrite_variant = rewrite_variant
        self.counters = AgentCounters()
        self._send = send_fn or (lambda datagram: None)
        self._clock = clock or (lambda: 0.0)

        self._participants: Dict[str, _ParticipantState] = {}
        self._participant_by_address: Dict[Address, str] = {}
        self._participant_by_ssrc: Dict[int, str] = {}
        self._adaptation_installed: Dict[Tuple[int, Address], bool] = {}

    # ------------------------------------------------------------------ meeting management

    def configure_meeting(
        self,
        meeting_id: str,
        participants: Sequence[ParticipantEndpoint],
        design: Optional[ReplicationDesign] = None,
    ) -> None:
        """(Re)install a meeting's replication state and feedback rules.

        All meeting-lifecycle writes run inside
        :meth:`~repro.dataplane.pipeline.PipelineControlPlane.batched_writes`,
        so a join that installs dozens of table entries and PRE nodes bumps
        each write generation once — datapath caches invalidate once per
        join, and process-executor workers resync on one snapshot instead of
        one per write.
        """
        with self.pipeline.batched_writes():
            if meeting_id in self.replication.meetings:
                self.replication.remove_meeting(meeting_id)
                for pid in [p for p, s in self._participants.items() if s.meeting_id == meeting_id]:
                    self._forget_participant(pid)
            self.replication.install_meeting(meeting_id, participants, design=design)
            for participant in participants:
                self._register_participant(meeting_id, participant)
            self._install_feedback_rules(meeting_id)
        self.counters.rule_updates += 1

    def add_participant(self, meeting_id: str, participant: ParticipantEndpoint) -> None:
        with self.pipeline.batched_writes():
            if meeting_id not in self.replication.meetings:
                self.replication.install_meeting(meeting_id, [participant])
            else:
                self.replication.add_participant(meeting_id, participant)
            self._register_participant(meeting_id, participant)
            self._install_feedback_rules(meeting_id)
        self.counters.rule_updates += 1

    def remove_participant(self, meeting_id: str, participant_id: str) -> None:
        """Tear down everything a departing participant consumed.

        Beyond the replication state (ingress entries, PRE nodes — handled by
        the replication manager's rebuild), a leave must release the
        participant's *egress-side* data-plane state: the rate-adaptation
        entries in which they appear as receiver or sender (freeing their
        sequence-rewriter registers and the accountant's stream-state
        charges) and every feedback rule addressed to or about them.  After a
        leave the control plane holds state only for the surviving
        population.
        """
        with self.pipeline.batched_writes():
            state = self._participants.get(participant_id)
            if state is not None:
                self._teardown_participant_state(state.endpoint)
            if meeting_id in self.replication.meetings:
                self.replication.remove_participant(meeting_id, participant_id)
            self._forget_participant(participant_id)
            self.downlink_filter.forget_receiver(participant_id)
            self.downlink_filter.forget_sender(participant_id)
            self.decode_targets.forget(participant_id)
            if meeting_id in self.replication.meetings:
                self._install_feedback_rules(meeting_id)
        self.counters.rule_updates += 1

    def _teardown_participant_state(self, endpoint: ParticipantEndpoint) -> None:
        """Release adaptation entries and feedback rules involving a leaver."""
        address = endpoint.address
        ssrcs = {ssrc for _kind, ssrc in endpoint.media_ssrcs()}
        for key in [
            k for k in self._adaptation_installed if k[1] == address or k[0] in ssrcs
        ]:
            self.pipeline.remove_adaptation(key[0], key[1])
            del self._adaptation_installed[key]
        stale_rules = [
            k
            for k, _rule in self.pipeline.feedback_table.entries()
            if k[0] == address or k[1] in ssrcs
        ]
        for receiver, media_ssrc in stale_rules:
            self.pipeline.remove_feedback_rule(receiver, media_ssrc)
        # shard-placement state of the departed flows: pins in the placement
        # exception table and (on a rebalancing engine) load-tracker rows
        forget_endpoint = getattr(self.pipeline, "forget_endpoint", None)
        if forget_endpoint is not None:
            forget_endpoint(address)
        else:
            self.pipeline.control.remove_placements_for(address)

    def migrate_meeting(self, meeting_id: str, design: ReplicationDesign) -> None:
        with self.pipeline.batched_writes():
            self.replication.migrate(meeting_id, design)
        self.counters.migrations += 1

    def meeting_design(self, meeting_id: str) -> Optional[ReplicationDesign]:
        state = self.replication.meetings.get(meeting_id)
        return None if state is None else state.design

    def _register_participant(self, meeting_id: str, participant: ParticipantEndpoint) -> None:
        self._participants[participant.participant_id] = _ParticipantState(
            endpoint=participant, meeting_id=meeting_id
        )
        self._participant_by_address[participant.address] = participant.participant_id
        for _kind, ssrc in participant.media_ssrcs():
            self._participant_by_ssrc[ssrc] = participant.participant_id

    def _forget_participant(self, participant_id: str) -> None:
        state = self._participants.pop(participant_id, None)
        if state is None:
            return
        self._participant_by_address.pop(state.endpoint.address, None)
        for _kind, ssrc in state.endpoint.media_ssrcs():
            self._participant_by_ssrc.pop(ssrc, None)

    def _install_feedback_rules(self, meeting_id: str) -> None:
        """Install NACK/PLI forwarding for every (receiver, sender-ssrc) pair."""
        meeting = self.replication.meetings.get(meeting_id)
        if meeting is None:
            return
        participants = list(meeting.participants.values())
        for sender in participants:
            selected = self.downlink_filter.selected_receiver(sender.participant_id)
            for receiver in participants:
                if receiver.participant_id == sender.participant_id:
                    continue
                for _kind, ssrc in sender.media_ssrcs():
                    self.pipeline.install_feedback_rule(
                        receiver.address,
                        ssrc,
                        FeedbackRule(
                            sender=sender.address,
                            forward_remb=(selected == receiver.participant_id),
                            forward_nack_pli=True,
                        ),
                    )

    # ------------------------------------------------------------------ cluster federation

    def register_remote_sender(self, meeting_id: str, endpoint: ParticipantEndpoint) -> None:
        """Register a sender whose media arrives over an inter-SFU trunk.

        The endpoint carries the sender's *true* client address (so a later
        migration that terminates the client locally reuses the same
        identity) but the sender is deliberately not entered in the
        address index: trunk media arrives from the peer SFU's address, and
        only SSRC resolution (REMB processing, extended-descriptor punts)
        needs to see remote senders.  No replication or feedback state is
        touched — the trunk manager owns the ingress routes.
        """
        self._participants[endpoint.participant_id] = _ParticipantState(
            endpoint=endpoint, meeting_id=meeting_id, remote=True
        )
        for _kind, ssrc in endpoint.media_ssrcs():
            self._participant_by_ssrc[ssrc] = endpoint.participant_id

    def forget_remote_sender(self, participant_id: str) -> None:
        """Drop a :meth:`register_remote_sender` registration (SSRC index and
        participant record only; adaptation state toward local receivers is
        torn down separately by the trunk manager when a remote sender truly
        leaves, and is deliberately preserved across trunk re-syncs)."""
        state = self._participants.get(participant_id)
        if state is None or not state.remote:
            # never touch a local registration: a migrated-in participant
            # re-registers the same id as local before any lingering trunk
            # teardown fires
            return
        del self._participants[participant_id]
        for _kind, ssrc in state.endpoint.media_ssrcs():
            if self._participant_by_ssrc.get(ssrc) == participant_id:
                del self._participant_by_ssrc[ssrc]

    def adopt_adaptation(self, sender_ssrc: int, receiver: Address, allowed_templates, rewriter) -> None:
        """Install a migrated-in adaptation entry with its shipped rewriter.

        Marks the (ssrc, receiver) pair installed so the next REMB-driven
        decode-target change goes through ``update_adaptation_templates``
        (template swap, rewriter state preserved) instead of installing a
        fresh rewriter — resetting the register image we just shipped would
        break the sequence-continuity guarantee of the migration.
        """
        self.pipeline.install_adaptation(sender_ssrc, receiver, allowed_templates, rewriter)
        self._adaptation_installed[(sender_ssrc, receiver)] = True

    def sender_structure(self, participant_id: str) -> Optional[TemplateStructure]:
        """The learned SVC template structure of a sender (``None`` if the
        participant is unknown here)."""
        state = self._participants.get(participant_id)
        return None if state is None else state.structure

    def adopt_sender_structure(self, participant_id: str, structure: TemplateStructure) -> None:
        """Adopt a migrated-in sender's learned SVC structure, so decode-target
        template resolution does not regress to the l1t3 default until the
        next key frame is punted."""
        state = self._participants.get(participant_id)
        if state is not None:
            state.structure = structure

    # ------------------------------------------------------------------ CPU packet handling

    def handle_cpu_packet(self, datagram: Datagram) -> None:
        """Process one packet copy punted by the data plane."""
        self.counters.packets_processed += 1
        self.counters.bytes_processed += datagram.size

        if datagram.kind == PayloadKind.STUN and isinstance(datagram.payload, StunMessage):
            self._handle_stun(datagram)
        elif datagram.kind == PayloadKind.RTCP:
            for packet in datagram.payload:  # type: ignore[union-attr]
                self._handle_rtcp(datagram.src, packet)
        elif datagram.kind == PayloadKind.RTP and isinstance(datagram.payload, RtpPacket):
            self._handle_extended_descriptor(datagram.src, datagram.payload)
        elif datagram.kind == PayloadKind.RTP and isinstance(datagram.payload, PacketView):
            # wire-native CPU copy (extended descriptor punt): the agent is
            # software — decoding once here is precisely the paper's split
            self._handle_extended_descriptor(datagram.src, datagram.payload.to_packet())

    def _handle_stun(self, datagram: Datagram) -> None:
        message: StunMessage = datagram.payload  # type: ignore[assignment]
        self.counters.stun_handled += 1
        if not message.is_request:
            return
        response = make_binding_response(message, datagram.src.ip, datagram.src.port)
        self._send(Datagram(src=datagram.dst, dst=datagram.src, payload=response))

    def _handle_extended_descriptor(self, src: Address, packet: RtpPacket) -> None:
        """SVC analysis of key frames carrying an extended dependency descriptor."""
        descriptor = extract_dependency_descriptor(packet.extension)
        if descriptor is None or descriptor.structure is None:
            return
        self.counters.extended_descriptors_handled += 1
        participant_id = self._participant_by_ssrc.get(packet.ssrc)
        if participant_id is not None and participant_id in self._participants:
            self._participants[participant_id].structure = descriptor.structure

    def _handle_rtcp(self, src: Address, packet: RtcpPacket) -> None:
        if isinstance(packet, Remb):
            self.counters.remb_handled += 1
            for media_ssrc in packet.media_ssrcs:
                self._process_estimate(src, media_ssrc, packet.bitrate_bps)
        elif isinstance(packet, ReceiverReport):
            # RR loss/jitter statistics could feed richer policies; the default
            # policy only uses REMB, so RRs are just counted.
            pass
        elif isinstance(packet, (Nack, PictureLossIndication)):
            self.counters.nack_pli_handled += 1

    # ------------------------------------------------------------------ rate adaptation

    def _process_estimate(self, receiver_addr: Address, media_ssrc: int, estimate_bps: float) -> None:
        receiver_id = self._participant_by_address.get(receiver_addr)
        sender_id = self._participant_by_ssrc.get(media_ssrc)
        if receiver_id is None or sender_id is None or receiver_id == sender_id:
            return
        now = self._clock()
        self.downlink_filter.observe(sender_id, receiver_id, estimate_bps, now)
        target, changed = self.decode_targets.update(sender_id, receiver_id, estimate_bps)
        if changed:
            self.counters.decode_target_changes += 1
            self._apply_decode_target(sender_id, receiver_id, target)

    def _apply_decode_target(self, sender_id: str, receiver_id: str, target: DecodeTarget) -> None:
        sender_state = self._participants.get(sender_id)
        receiver_state = self._participants.get(receiver_id)
        if sender_state is None or receiver_state is None:
            return
        video_ssrc = sender_state.endpoint.video_ssrc
        if video_ssrc is None:
            return
        allowed = frozenset(sender_state.structure.templates_for_decode_target(int(target)))
        key = (video_ssrc, receiver_state.endpoint.address)
        if self._adaptation_installed.get(key):
            self.pipeline.update_adaptation_templates(video_ssrc, receiver_state.endpoint.address, allowed)
        else:
            rewriter = self._make_rewriter(target)
            self.pipeline.install_adaptation(
                video_ssrc, receiver_state.endpoint.address, allowed, rewriter
            )
            self._adaptation_installed[key] = True
            self._maybe_migrate_for_adaptation(sender_state.meeting_id)
        self.counters.rule_updates += 1

    def _make_rewriter(self, target: DecodeTarget):
        cadence = SkipCadence.for_decode_target(int(target))
        if self.rewrite_variant == RewriteVariant.S_LM:
            return SequenceRewriterLowMemory(cadence)
        return SequenceRewriterLowRetransmission(cadence)

    def _maybe_migrate_for_adaptation(self, meeting_id: str) -> None:
        """Move a meeting from the NRA design to RA-R when adaptation starts."""
        design = self.meeting_design(meeting_id)
        if design == ReplicationDesign.NRA:
            self.migrate_meeting(meeting_id, ReplicationDesign.RA_R)

    # ------------------------------------------------------------------ periodic work

    def run_filter_function(self) -> int:
        """Reselect the best downlink per sender; returns rule updates made.

        Called periodically (every :data:`FILTER_RESELECT_INTERVAL_S`) by the
        SFU wrapper, mirroring the periodic EWMA maximum selection of §5.3.
        """
        updates = 0
        with self.pipeline.batched_writes():
            for sender_id, state in list(self._participants.items()):
                if state.remote:
                    # trunked-in sender: the origin SFU selects its best
                    # downlink; installing rules here would point feedback at
                    # the remote client address, bypassing the trunk
                    continue
                best, changed = self.downlink_filter.reselect(sender_id)
                if best is None or not changed:
                    continue
                meeting = self.replication.meetings.get(state.meeting_id)
                if meeting is None:
                    continue
                for receiver in meeting.participants.values():
                    if receiver.participant_id == sender_id:
                        continue
                    for _kind, ssrc in state.endpoint.media_ssrcs():
                        self.pipeline.install_feedback_rule(
                            receiver.address,
                            ssrc,
                            FeedbackRule(
                                sender=state.endpoint.address,
                                forward_remb=(receiver.participant_id == best),
                                forward_nack_pli=True,
                            ),
                        )
                        updates += 1
        if updates:
            self.counters.rule_updates += updates
        return updates

    # ------------------------------------------------------------------ inspection helpers

    def decode_target_for(self, sender_id: str, receiver_id: str) -> DecodeTarget:
        return self.decode_targets.current(sender_id, receiver_id)

    def participants_in(self, meeting_id: str) -> List[str]:
        meeting = self.replication.meetings.get(meeting_id)
        return [] if meeting is None else list(meeting.participants)
