"""Signaling messages exchanged between clients and the Scallop controller.

WebRTC leaves the signaling channel unspecified; production systems use a web
server (HTTPS/WebSocket).  The reproduction models the channel as typed
messages delivered instantly (signaling latency does not matter for any of the
paper's experiments — it is in the "infrequent, >10 ms" class of Figure 6).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from .sdp import SessionDescription


class SignalType(str, Enum):
    """Message types on the signaling channel."""

    JOIN = "join"
    LEAVE = "leave"
    OFFER = "offer"
    ANSWER = "answer"
    MEDIA_STARTED = "media_started"
    MEDIA_STOPPED = "media_stopped"
    ERROR = "error"


@dataclass(frozen=True)
class SignalMessage:
    """A message on the signaling channel.

    ``sdp`` is carried as serialized text, exactly as a browser would post it.
    """

    type: SignalType
    meeting_id: str
    participant_id: str
    sdp: Optional[str] = None
    media_kind: Optional[str] = None
    detail: Optional[str] = None

    def to_json(self) -> str:
        payload = {k: v for k, v in asdict(self).items() if v is not None}
        payload["type"] = self.type.value
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SignalMessage":
        payload = json.loads(text)
        return cls(
            type=SignalType(payload["type"]),
            meeting_id=payload["meeting_id"],
            participant_id=payload["participant_id"],
            sdp=payload.get("sdp"),
            media_kind=payload.get("media_kind"),
            detail=payload.get("detail"),
        )

    def session_description(self) -> Optional[SessionDescription]:
        if self.sdp is None:
            return None
        return SessionDescription.parse(self.sdp)


def join_message(meeting_id: str, participant_id: str, offer: SessionDescription) -> SignalMessage:
    """A participant joining a meeting, carrying its SDP offer."""
    return SignalMessage(
        type=SignalType.JOIN,
        meeting_id=meeting_id,
        participant_id=participant_id,
        sdp=offer.serialize(),
    )


def leave_message(meeting_id: str, participant_id: str) -> SignalMessage:
    return SignalMessage(type=SignalType.LEAVE, meeting_id=meeting_id, participant_id=participant_id)


def answer_message(
    meeting_id: str, participant_id: str, answer: SessionDescription
) -> SignalMessage:
    return SignalMessage(
        type=SignalType.ANSWER,
        meeting_id=meeting_id,
        participant_id=participant_id,
        sdp=answer.serialize(),
    )


def media_event(
    meeting_id: str, participant_id: str, media_kind: str, started: bool
) -> SignalMessage:
    """A participant starting or stopping a media type (audio/video/screen)."""
    return SignalMessage(
        type=SignalType.MEDIA_STARTED if started else SignalType.MEDIA_STOPPED,
        meeting_id=meeting_id,
        participant_id=participant_id,
        media_kind=media_kind,
    )
