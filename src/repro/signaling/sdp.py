"""SDP offer/answer model (RFC 3264 / 4566 subset) and candidate rewriting.

Scallop's controller acts as the WebRTC signaling server and *intercepts* SDP
offers/answers so that every participant believes its sole peer is the SFU:
connection candidates are replaced with the SFU's address, and per-stream
SSRCs are recorded so the controller can install data-plane rules.

The model keeps a structured representation (:class:`SessionDescription`) and
a text codec close enough to real SDP that the parser round-trips what the
encoder emits, including ``m=`` sections, ``a=candidate``, ``a=ssrc`` and the
AV1/Opus codec parameters used in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple


class SdpParseError(ValueError):
    """Raised when an SDP blob cannot be parsed."""


@dataclass(frozen=True)
class IceCandidate:
    """A single ICE connection candidate (host candidates only)."""

    foundation: str
    component: int
    protocol: str
    priority: int
    ip: str
    port: int
    candidate_type: str = "host"

    def to_line(self) -> str:
        return (
            f"a=candidate:{self.foundation} {self.component} {self.protocol} "
            f"{self.priority} {self.ip} {self.port} typ {self.candidate_type}"
        )

    @classmethod
    def from_line(cls, line: str) -> "IceCandidate":
        if not line.startswith("a=candidate:"):
            raise SdpParseError(f"not a candidate line: {line}")
        parts = line[len("a=candidate:") :].split()
        if len(parts) < 8 or parts[6] != "typ":
            raise SdpParseError(f"malformed candidate line: {line}")
        return cls(
            foundation=parts[0],
            component=int(parts[1]),
            protocol=parts[2],
            priority=int(parts[3]),
            ip=parts[4],
            port=int(parts[5]),
            candidate_type=parts[7],
        )


@dataclass(frozen=True)
class MediaDescription:
    """One ``m=`` section: a single audio, video, or screen-share stream."""

    kind: str                      # "audio" | "video" | "screen"
    port: int
    payload_type: int
    codec: str                     # "opus" | "AV1"
    ssrc: int
    direction: str = "sendrecv"    # sendrecv | sendonly | recvonly
    candidates: Tuple[IceCandidate, ...] = ()
    svc_mode: Optional[str] = None  # e.g. "L1T3"

    def media_token(self) -> str:
        # screen shares ride in a video m-section with a content attribute
        return "video" if self.kind == "screen" else self.kind


@dataclass(frozen=True)
class SessionDescription:
    """A full SDP session description (offer or answer)."""

    session_id: str
    origin_address: str
    media: Tuple[MediaDescription, ...] = ()
    ice_ufrag: str = "scallop"
    ice_pwd: str = "scallop-secret"

    # -- mutation helpers used by the controller ------------------------------

    def with_rewritten_candidates(self, sfu_ip: str, sfu_port: int) -> "SessionDescription":
        """Replace every candidate with the SFU's address (proxy insertion)."""
        new_media = []
        for section in self.media:
            candidate = IceCandidate(
                foundation="1",
                component=1,
                protocol="udp",
                priority=2130706431,
                ip=sfu_ip,
                port=sfu_port,
            )
            new_media.append(replace(section, port=sfu_port, candidates=(candidate,)))
        return replace(self, media=tuple(new_media), origin_address=sfu_ip)

    def ssrcs(self) -> List[int]:
        return [section.ssrc for section in self.media]

    # -- text codec ------------------------------------------------------------

    def serialize(self) -> str:
        lines = [
            "v=0",
            f"o=- {self.session_id} 2 IN IP4 {self.origin_address}",
            "s=-",
            "t=0 0",
            f"a=ice-ufrag:{self.ice_ufrag}",
            f"a=ice-pwd:{self.ice_pwd}",
        ]
        for section in self.media:
            lines.append(
                f"m={section.media_token()} {section.port} UDP/TLS/RTP/SAVPF {section.payload_type}"
            )
            lines.append(f"c=IN IP4 {self.origin_address}")
            lines.append(f"a={section.direction}")
            clock = 48000 if section.kind == "audio" else 90000
            lines.append(f"a=rtpmap:{section.payload_type} {section.codec}/{clock}")
            if section.svc_mode is not None:
                lines.append(f"a=fmtp:{section.payload_type} svc-mode={section.svc_mode}")
            if section.kind == "screen":
                lines.append("a=content:slides")
            lines.append(f"a=ssrc:{section.ssrc} cname:participant")
            for candidate in section.candidates:
                lines.append(candidate.to_line())
        return "\r\n".join(lines) + "\r\n"

    @classmethod
    def parse(cls, text: str) -> "SessionDescription":
        session_id = ""
        origin = ""
        ice_ufrag = "scallop"
        ice_pwd = "scallop-secret"
        media: List[MediaDescription] = []
        current: Optional[Dict[str, object]] = None

        def flush() -> None:
            if current is None:
                return
            media.append(
                MediaDescription(
                    kind=str(current["kind"]),
                    port=int(current["port"]),                       # type: ignore[arg-type]
                    payload_type=int(current["payload_type"]),       # type: ignore[arg-type]
                    codec=str(current.get("codec", "")),
                    ssrc=int(current.get("ssrc", 0)),                # type: ignore[arg-type]
                    direction=str(current.get("direction", "sendrecv")),
                    candidates=tuple(current.get("candidates", ())),  # type: ignore[arg-type]
                    svc_mode=current.get("svc_mode"),                 # type: ignore[arg-type]
                )
            )

        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("o="):
                parts = line[2:].split()
                if len(parts) < 6:
                    raise SdpParseError(f"malformed origin line: {line}")
                session_id = parts[1]
                origin = parts[5]
            elif line.startswith("m="):
                flush()
                parts = line[2:].split()
                if len(parts) < 4:
                    raise SdpParseError(f"malformed media line: {line}")
                current = {
                    "kind": parts[0],
                    "port": int(parts[1]),
                    "payload_type": int(parts[3]),
                    "candidates": [],
                }
            elif line.startswith("a=ice-ufrag:"):
                ice_ufrag = line.split(":", 1)[1]
            elif line.startswith("a=ice-pwd:"):
                ice_pwd = line.split(":", 1)[1]
            elif current is not None:
                if line.startswith("a=rtpmap:"):
                    current["codec"] = line.split(" ", 1)[1].split("/")[0]
                elif line.startswith("a=ssrc:"):
                    current["ssrc"] = int(line[len("a=ssrc:") :].split()[0])
                elif line.startswith("a=candidate:"):
                    current["candidates"].append(IceCandidate.from_line(line))  # type: ignore[union-attr]
                elif line.startswith("a=fmtp:") and "svc-mode=" in line:
                    current["svc_mode"] = line.split("svc-mode=")[1]
                elif line.startswith("a=content:slides"):
                    current["kind"] = "screen"
                elif line in ("a=sendrecv", "a=sendonly", "a=recvonly", "a=inactive"):
                    current["direction"] = line[2:]
        flush()
        return cls(
            session_id=session_id,
            origin_address=origin,
            media=tuple(media),
            ice_ufrag=ice_ufrag,
            ice_pwd=ice_pwd,
        )


def make_offer(
    session_id: str,
    address: str,
    port: int,
    ssrc_base: int,
    send_audio: bool = True,
    send_video: bool = True,
    send_screen: bool = False,
) -> SessionDescription:
    """Build a client's SDP offer for the media types it wants to share."""
    media: List[MediaDescription] = []
    candidate = IceCandidate(
        foundation="1", component=1, protocol="udp", priority=2130706431, ip=address, port=port
    )
    if send_audio:
        media.append(
            MediaDescription(
                kind="audio",
                port=port,
                payload_type=111,
                codec="opus",
                ssrc=ssrc_base,
                candidates=(candidate,),
            )
        )
    if send_video:
        media.append(
            MediaDescription(
                kind="video",
                port=port,
                payload_type=45,
                codec="AV1",
                ssrc=ssrc_base + 1,
                candidates=(candidate,),
                svc_mode="L1T3",
            )
        )
    if send_screen:
        media.append(
            MediaDescription(
                kind="screen",
                port=port,
                payload_type=45,
                codec="AV1",
                ssrc=ssrc_base + 2,
                candidates=(candidate,),
                svc_mode="L1T3",
            )
        )
    return SessionDescription(session_id=session_id, origin_address=address, media=tuple(media))


def make_answer(offer: SessionDescription, address: str, port: int) -> SessionDescription:
    """Build the answer the SFU returns for an offer (same media, SFU address)."""
    return offer.with_rewritten_candidates(address, port)
