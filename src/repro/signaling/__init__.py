"""SDP / signaling substrate used by the Scallop controller."""

from .sdp import (
    IceCandidate,
    MediaDescription,
    SdpParseError,
    SessionDescription,
    make_answer,
    make_offer,
)
from .messages import (
    SignalMessage,
    SignalType,
    answer_message,
    join_message,
    leave_message,
    media_event,
)

__all__ = [
    "IceCandidate",
    "MediaDescription",
    "SdpParseError",
    "SessionDescription",
    "make_answer",
    "make_offer",
    "SignalMessage",
    "SignalType",
    "answer_message",
    "join_message",
    "leave_message",
    "media_event",
]
