"""CPU / operating-system cost model for the software SFU baseline.

The paper attributes the software SFU's QoE collapse under load to
operating-system packet-processing artefacts: socket-buffer copies, context
switches, scheduling and interrupt delays (§2.2).  This model captures those
effects with a small queueing model per core:

* every packet requires a base service time plus a per-byte copy cost,
* packets queue FIFO per core (the paper pins Mediasoup to one core),
* scheduling noise adds a random delay whose magnitude grows steeply as the
  core approaches saturation (context switches and run-queue waits), and
* the queue is bounded — packets arriving to a full queue are dropped, which
  is what ultimately collapses the received frame rate (Figure 4).

Defaults are calibrated so that a single modern core sustains roughly 230k
small-packet forwarding operations per second, consistent with the paper's
observation that one core saturates at about 80 active meeting participants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Base per-packet processing cost (syscalls, lookups, header handling).
DEFAULT_BASE_COST_S = 3.0e-6
#: Additional per-byte cost (socket-buffer copies in and out).
DEFAULT_PER_BYTE_COST_S = 1.2e-9
#: Maximum backlog (in seconds of work) a core will queue before dropping.
DEFAULT_QUEUE_LIMIT_S = 0.25
#: Magnitude of scheduler noise at full utilization.
DEFAULT_SCHED_NOISE_S = 0.004
#: Baseline user-space wakeup latency per packet even on an idle core
#: (epoll wakeup, socket read, thread scheduling): ~100 us median.
DEFAULT_WAKEUP_LATENCY_S = 0.00012


@dataclass
class CpuStats:
    """Counters exposed by the CPU model."""

    packets_processed: int = 0
    packets_dropped: int = 0
    busy_time_s: float = 0.0
    total_queue_delay_s: float = 0.0


class CpuCore:
    """A single CPU core processing packets FIFO with OS-level noise."""

    def __init__(
        self,
        base_cost_s: float = DEFAULT_BASE_COST_S,
        per_byte_cost_s: float = DEFAULT_PER_BYTE_COST_S,
        queue_limit_s: float = DEFAULT_QUEUE_LIMIT_S,
        sched_noise_s: float = DEFAULT_SCHED_NOISE_S,
        wakeup_latency_s: float = DEFAULT_WAKEUP_LATENCY_S,
        seed: int = 0,
    ) -> None:
        self.base_cost_s = base_cost_s
        self.per_byte_cost_s = per_byte_cost_s
        self.queue_limit_s = queue_limit_s
        self.sched_noise_s = sched_noise_s
        self.wakeup_latency_s = wakeup_latency_s
        self._rng = random.Random(seed)
        self._busy_until = 0.0
        #: Monotone admission clock: batch-mode callers submit packets at
        #: their true (schedule-preserved) arrival times, which can step
        #: behind packets already admitted from a different delivery path;
        #: a core observes work in admission order, so late submissions are
        #: lifted to this frontier (otherwise the utilization window reads a
        #: negative elapsed time as full saturation and the noise model
        #: explodes).
        self._clock = 0.0
        self._window_start = 0.0
        self._window_busy = 0.0
        self.stats = CpuStats()

    def service_time(self, size_bytes: int) -> float:
        """Deterministic service time for one packet of the given size."""
        return self.base_cost_s + size_bytes * self.per_byte_cost_s

    def process(self, size_bytes: int, now: float) -> Optional[float]:
        """Submit a packet at time ``now``.

        Returns the delay until the packet has been fully processed (queueing
        plus service plus scheduling noise), or ``None`` if the packet was
        dropped because the core's backlog exceeded its limit.
        """
        # monotone view of time for the utilization window and noise model:
        # batch-mode callers submit packets at their true (schedule-preserved)
        # arrival times, which can step slightly behind work already admitted
        # from another delivery path; the queue math below tolerates that, but
        # a backwards clock would make the utilization window read a ~zero
        # elapsed time as full saturation and the noise model explode
        if now > self._clock:
            self._clock = now
        clock = self._clock

        backlog = max(0.0, self._busy_until - now)
        if backlog > self.queue_limit_s:
            self.stats.packets_dropped += 1
            return None

        service = self.service_time(size_bytes)
        start = max(now, self._busy_until)
        self._busy_until = start + service

        utilization = self.utilization(clock)
        noise = 0.0
        if self.wakeup_latency_s > 0:
            # user-space wakeup (epoll + read + thread dispatch) paid even on
            # an idle core; roughly exponential with a ~100 us median.
            noise += self._rng.expovariate(1.0 / self.wakeup_latency_s)
        if self.sched_noise_s > 0:
            # scheduling noise grows super-linearly as the core saturates:
            # a lightly loaded core adds microseconds, a saturated one adds
            # multiple milliseconds of run-queue wait and context switches.
            severity = utilization ** 3
            noise += self._rng.expovariate(1.0 / (self.sched_noise_s * max(severity, 0.005)))

        queue_delay = start - now
        self.stats.packets_processed += 1
        self.stats.busy_time_s += service
        self.stats.total_queue_delay_s += queue_delay
        self._account_window(clock, service)
        return queue_delay + service + noise

    def utilization(self, now: float, window_s: float = 1.0) -> float:
        """Approximate utilization over the recent past (0..1)."""
        elapsed = max(now - self._window_start, 1e-6)
        if elapsed >= window_s:
            utilization = min(1.0, self._window_busy / elapsed)
            # roll the window forward
            self._window_start = now
            self._window_busy = 0.0
            self._last_utilization = utilization
            return utilization
        busy = self._window_busy + max(0.0, self._busy_until - now)
        return min(1.0, busy / max(elapsed, 1e-6))

    def _account_window(self, now: float, service: float) -> None:
        if now - self._window_start > 5.0:
            self._window_start = now
            self._window_busy = 0.0
        self._window_busy += service

    @property
    def backlog_until(self) -> float:
        return self._busy_until


class CpuPool:
    """A pool of cores with per-stream core affinity (hash pinning).

    Real software SFUs shard meetings or streams across worker threads; under
    a single-core configuration (as in the paper's overload experiment) all
    traffic lands on core 0.
    """

    def __init__(self, cores: int = 1, seed: int = 0, **core_kwargs) -> None:
        if cores <= 0:
            raise ValueError("need at least one core")
        self.cores: List[CpuCore] = [
            CpuCore(seed=seed + index, **core_kwargs) for index in range(cores)
        ]

    def core_for(self, flow_key: int) -> CpuCore:
        return self.cores[flow_key % len(self.cores)]

    def process(self, flow_key: int, size_bytes: int, now: float) -> Optional[float]:
        return self.core_for(flow_key).process(size_bytes, now)

    def total_stats(self) -> CpuStats:
        total = CpuStats()
        for core in self.cores:
            total.packets_processed += core.stats.packets_processed
            total.packets_dropped += core.stats.packets_dropped
            total.busy_time_s += core.stats.busy_time_s
            total.total_queue_delay_s += core.stats.total_queue_delay_s
        return total

    def max_utilization(self, now: float) -> float:
        return max(core.utilization(now) for core in self.cores)
