"""Software split-proxy SFU baseline (Mediasoup-like) and its CPU cost model."""

from .cpu import CpuCore, CpuPool, CpuStats
from .software_sfu import SERVER_PORT_PROFILE, SoftwareSfu, SoftwareSfuStats

__all__ = [
    "CpuCore",
    "CpuPool",
    "CpuStats",
    "SERVER_PORT_PROFILE",
    "SoftwareSfu",
    "SoftwareSfuStats",
]
