"""A split-proxy software SFU baseline (Mediasoup-like, paper §2.2 and §7.3).

The baseline terminates a separate WebRTC "connection" per participant (a
split proxy): it receives every media packet in user space, pays the CPU/OS
cost modelled by :mod:`repro.baseline.cpu`, and then re-sends one copy per
downstream participant, paying the cost again per copy.  Feedback is
terminated at the SFU: REMB from a receiver adjusts the SVC layers the SFU
forwards to that receiver; NACKs are answered from a short packet cache;
STUN is answered directly.

Observable simplification: a real split proxy re-originates streams with its
own SSRCs and sequence numbers.  Because every downstream packet is a fresh
stream from the SFU, rate adaptation needs no sequence rewriting; we model
that by renumbering the forwarded packets per receiver, which preserves the
receiver-visible behaviour (continuous sequence space per receiver).
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netsim.datagram import Address, Datagram, PayloadKind
from ..netsim.link import LinkProfile, Network
from ..netsim.simulator import Simulator
from ..rtp.av1 import DecodeTarget, TemplateStructure, extract_dependency_descriptor
from ..rtp.packet import PT_AUDIO_OPUS, RtpPacket, SEQ_MOD
from ..rtp.wire import PacketView
from ..rtp.rtcp import Nack, PictureLossIndication, ReceiverReport, Remb, RtcpPacket, SenderReport
from ..signaling.messages import join_message, leave_message
from ..stun.message import StunMessage, make_binding_response
from ..webrtc.client import WebRtcClient
from ..core.rate_control import SelectDecodeTargetFn, select_decode_target
from .cpu import CpuPool

#: Access-link profile of the server's NIC in the paper's testbed (1 Gbit/s).
SERVER_PORT_PROFILE = LinkProfile(bandwidth_bps=1_000_000_000.0, propagation_delay_s=0.0002)


def _cpu_flow_key(address: Address) -> int:
    """Deterministic flow -> core pinning key.

    ``hash(address)`` would randomize per interpreter run (PYTHONHASHSEED),
    making seeded multi-core experiments non-reproducible; CRC32 over the
    canonical address string pins flows identically in every run.
    """
    return zlib.crc32(f"{address.ip}:{address.port}".encode("ascii")) & 0xFFFF


@dataclass
class _Participant:
    participant_id: str
    meeting_id: str
    address: Address
    audio_ssrc: Optional[int] = None
    video_ssrc: Optional[int] = None
    decode_targets: Dict[int, DecodeTarget] = field(default_factory=dict)  # per sender ssrc
    out_sequence: Dict[int, int] = field(default_factory=dict)             # per origin ssrc


@dataclass
class SoftwareSfuStats:
    """Forwarding statistics of the software SFU."""

    packets_in: int = 0
    packets_out: int = 0
    packets_dropped_cpu: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    feedback_handled: int = 0


class SoftwareSfu:
    """A split-proxy SFU running on general-purpose CPU cores."""

    def __init__(
        self,
        address: Address,
        simulator: Simulator,
        network: Network,
        cores: int = 1,
        cpu: Optional[CpuPool] = None,
        uplink_profile: Optional[LinkProfile] = None,
        downlink_profile: Optional[LinkProfile] = None,
        structure: Optional[TemplateStructure] = None,
        select_fn: SelectDecodeTargetFn = select_decode_target,
    ) -> None:
        self.address = address
        self.simulator = simulator
        self.network = network
        self.cpu = cpu or CpuPool(cores=cores)
        self.stats = SoftwareSfuStats()
        self.structure = structure or TemplateStructure.l1t3()
        self.select_fn = select_fn

        self._participants: Dict[Address, _Participant] = {}
        self._meetings: Dict[str, List[Address]] = {}
        self._by_ssrc: Dict[int, Address] = {}
        self._rtx_cache: "OrderedDict[Tuple[int, int], RtpPacket]" = OrderedDict()
        #: Per-packet SFU-induced forwarding latency in milliseconds
        #: (receive-side CPU delay + send-side CPU delay), as in Figure 19.
        self.forwarding_latency_samples_ms: List[float] = []

        network.attach(
            self,
            uplink=uplink_profile or SERVER_PORT_PROFILE,
            downlink=downlink_profile or SERVER_PORT_PROFILE,
        )

    # ------------------------------------------------------------------ membership

    def join(self, client: WebRtcClient) -> None:
        """Register a client (split-proxy session establishment)."""
        config = client.config
        participant = _Participant(
            participant_id=config.participant_id,
            meeting_id=config.meeting_id,
            address=config.address,
            audio_ssrc=client.audio_ssrc if config.send_audio else None,
            video_ssrc=client.video_ssrc if config.send_video else None,
        )
        self._participants[config.address] = participant
        self._meetings.setdefault(config.meeting_id, [])
        if config.address not in self._meetings[config.meeting_id]:
            self._meetings[config.meeting_id].append(config.address)
        if participant.audio_ssrc is not None:
            self._by_ssrc[participant.audio_ssrc] = config.address
        if participant.video_ssrc is not None:
            self._by_ssrc[participant.video_ssrc] = config.address
        client.remote = self.address

    def leave(self, client: WebRtcClient) -> None:
        """Tear down a departed participant's split-proxy session state.

        Releases the SSRC routes, the per-receiver adaptation/renumbering
        state the survivors held about the leaver's streams, and the
        retransmission cache entries of those streams — after a leave the SFU
        tracks only the surviving population.
        """
        address = client.config.address
        participant = self._participants.pop(address, None)
        if participant is None:
            return
        members = self._meetings.get(participant.meeting_id, [])
        if address in members:
            members.remove(address)
        if not members:
            self._meetings.pop(participant.meeting_id, None)
        departed_ssrcs = {
            ssrc for ssrc in (participant.audio_ssrc, participant.video_ssrc) if ssrc is not None
        }
        for ssrc in departed_ssrcs:
            self._by_ssrc.pop(ssrc, None)
        for other in self._participants.values():
            for ssrc in departed_ssrcs:
                other.decode_targets.pop(ssrc, None)
                other.out_sequence.pop(ssrc, None)
        for key in [k for k in self._rtx_cache if k[0] in departed_ssrcs]:
            del self._rtx_cache[key]

    def meeting_size(self, meeting_id: str) -> int:
        return len(self._meetings.get(meeting_id, []))

    @property
    def total_participants(self) -> int:
        return len(self._participants)

    # ------------------------------------------------------------------ packet path

    def handle_datagram(self, datagram: Datagram) -> None:
        self._receive(datagram, self.simulator.now)

    def handle_datagram_batch(self, datagrams: List[Datagram]) -> None:
        """Ingest one RX-queue drain (burst-mode network delivery).

        A split proxy gains nothing from batching — every packet still pays
        the full user-space receive cost and every copy the full send cost —
        so this only anchors each packet's CPU admission on its true arrival
        schedule (``arrived_at``).  It exists so Figures 3/4 compare the
        software baseline like-for-like with the batched/sharded Scallop path
        under identical burst-mode traffic, and so high-meeting-count sweeps
        of the baseline ride one simulator event per burst.
        """
        now = self.simulator.now
        for datagram in datagrams:
            arrived = datagram.arrived_at
            self._receive(datagram, now if arrived is None else arrived)

    def _receive(self, datagram: Datagram, at: float) -> None:
        self.stats.packets_in += 1
        self.stats.bytes_in += datagram.size

        # every received packet costs CPU before the SFU can even look at it
        delay = self.cpu.process(_cpu_flow_key(datagram.src), datagram.wire_size, at)
        if delay is None:
            self.stats.packets_dropped_cpu += 1
            return
        # ``delay`` is relative to the packet's arrival; re-anchor on the
        # current event time (burst events fire at the last packet's arrival)
        event_delay = max(0.0, at + delay - self.simulator.now)
        self.simulator.schedule(event_delay, lambda d=datagram, rx=delay: self._dispatch(d, rx))

    def _dispatch(self, datagram: Datagram, receive_delay_s: float = 0.0) -> None:
        if datagram.kind == PayloadKind.RTP and isinstance(datagram.payload, RtpPacket):
            self._forward_media(datagram, datagram.payload, receive_delay_s)
        elif datagram.kind == PayloadKind.RTP and isinstance(datagram.payload, PacketView):
            # a split proxy terminates the stream in user space: wire-native
            # ingress is decoded once here and re-originated per receiver as
            # object packets (which is exactly the per-copy work the paper's
            # baseline pays and Scallop's header rewrite avoids)
            self._forward_media(datagram, datagram.payload.to_packet(), receive_delay_s)
        elif datagram.kind == PayloadKind.RTCP:
            self._handle_rtcp(datagram)
        elif datagram.kind == PayloadKind.STUN and isinstance(datagram.payload, StunMessage):
            self._handle_stun(datagram)

    def _forward_media(self, datagram: Datagram, packet: RtpPacket, receive_delay_s: float = 0.0) -> None:
        sender = self._participants.get(datagram.src)
        if sender is None:
            return
        self._cache_for_rtx(packet)
        members = self._meetings.get(sender.meeting_id, [])
        template_id = self._template_id(packet)
        for address in members:
            if address == datagram.src:
                continue
            receiver = self._participants.get(address)
            if receiver is None:
                continue
            if template_id is not None and not self._wanted(receiver, packet.ssrc, template_id):
                continue
            out_packet = self._renumber(receiver, packet)
            out = Datagram(src=self.address, dst=address, payload=out_packet, meta=dict(datagram.meta))
            # each outgoing copy costs CPU again (socket write + copy)
            delay = self.cpu.process(_cpu_flow_key(address), out.wire_size, self.simulator.now)
            if delay is None:
                self.stats.packets_dropped_cpu += 1
                continue
            self.stats.packets_out += 1
            self.stats.bytes_out += out.size
            if len(self.forwarding_latency_samples_ms) < 500_000:
                self.forwarding_latency_samples_ms.append((receive_delay_s + delay) * 1000.0)
            self.simulator.schedule(delay, lambda d=out: self.network.send(d))

    def _template_id(self, packet: RtpPacket) -> Optional[int]:
        if packet.payload_type == PT_AUDIO_OPUS:
            return None
        descriptor = extract_dependency_descriptor(packet.extension)
        return None if descriptor is None else descriptor.template_id

    def _wanted(self, receiver: _Participant, origin_ssrc: int, template_id: int) -> bool:
        target = receiver.decode_targets.get(origin_ssrc, DecodeTarget.DT2)
        return template_id in self.structure.templates_for_decode_target(int(target))

    def _renumber(self, receiver: _Participant, packet: RtpPacket) -> RtpPacket:
        """Re-originate the stream towards this receiver (split-proxy behaviour)."""
        key = packet.ssrc
        next_seq = receiver.out_sequence.get(key)
        if next_seq is None:
            next_seq = packet.sequence_number
        receiver.out_sequence[key] = (next_seq + 1) % SEQ_MOD
        return packet.with_sequence_number(next_seq)

    # ------------------------------------------------------------------ feedback (terminated here)

    def _handle_rtcp(self, datagram: Datagram) -> None:
        receiver = self._participants.get(datagram.src)
        for packet in datagram.payload:  # type: ignore[union-attr]
            if isinstance(packet, Remb) and receiver is not None:
                self.stats.feedback_handled += 1
                for origin_ssrc in packet.media_ssrcs:
                    current = receiver.decode_targets.get(origin_ssrc, DecodeTarget.DT2)
                    receiver.decode_targets[origin_ssrc] = self.select_fn(current, (), packet.bitrate_bps)
            elif isinstance(packet, Nack):
                self.stats.feedback_handled += 1
                self._answer_nack(datagram.src, packet)
            elif isinstance(packet, (PictureLossIndication, ReceiverReport, SenderReport)):
                self.stats.feedback_handled += 1
                # PLIs would be forwarded to the sender; SR/RRs feed the SFU's
                # own estimators.  Neither affects the measured experiments.

    def _answer_nack(self, receiver_addr: Address, nack: Nack) -> None:
        for seq in nack.lost_sequence_numbers:
            cached = self._rtx_cache.get((nack.media_ssrc, seq))
            if cached is None:
                continue
            out = Datagram(src=self.address, dst=receiver_addr, payload=cached)
            delay = self.cpu.process(_cpu_flow_key(receiver_addr), out.wire_size, self.simulator.now)
            if delay is None:
                continue
            self.stats.packets_out += 1
            self.simulator.schedule(delay, lambda d=out: self.network.send(d))

    def _cache_for_rtx(self, packet: RtpPacket) -> None:
        self._rtx_cache[(packet.ssrc, packet.sequence_number)] = packet
        while len(self._rtx_cache) > 4096:
            self._rtx_cache.popitem(last=False)

    def _handle_stun(self, datagram: Datagram) -> None:
        message: StunMessage = datagram.payload  # type: ignore[assignment]
        if not message.is_request:
            return
        response = make_binding_response(message, datagram.src.ip, datagram.src.port)
        out = Datagram(src=self.address, dst=datagram.src, payload=response)
        self.stats.packets_out += 1
        self.network.send(out)
