"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The design point is the hot path of a disabled registry: instrumented code
holds one optional reference (``self.obs``) and pays a single attribute load
plus branch when observability is off.  When it is on, every event costs
integer adds — counter bumps are dict adds, histogram observes are one
``bisect`` into a small tuple of bounds plus three adds.  Nothing here reads
a clock or an RNG: values and timestamps are handed in by the caller, which
in simulation code means they came from ``Simulator.now`` (archlint's
determinism rule covers this module like any other ``repro.*`` module).

Histograms are Prometheus-shaped: a tuple of upper bounds, one count per
``value <= bound`` bucket plus an overflow bucket, a running sum, and a
total count.  Merging two histograms with identical bounds is element-wise
integer addition — commutative and associative, which is what lets the
thread/process shard executors fold per-shard registries at the batch
barrier in any order and still produce executor-invariant snapshots.

Two percentile estimators live on :class:`Histogram`:

``percentile``
    Standard bucket interpolation for fixed-bound histograms (the hot-path
    kind): linear within the bucket that spans the target rank.

``sample_percentile``
    For histograms built via :meth:`Histogram.from_samples`, whose bounds
    *are* the distinct sample values (all mass sits exactly on a bound).
    This reproduces linear interpolation over the order statistics —
    bit-identical to :func:`repro.analysis.metrics.percentile` — so summary
    paths re-expressed through histogram bucketing cannot drift from the
    exact-sample path.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil, floor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "LATENCY_MS_BUCKETS",
    "SIZE_BYTES_BUCKETS",
    "STAGE_NS_BUCKETS",
    "BATCH_NS_BUCKETS",
]

#: End-to-end / one-way latency in milliseconds.
LATENCY_MS_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

#: Packet / blob sizes in bytes.
SIZE_BYTES_BUCKETS: Tuple[float, ...] = (
    64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0, 65536.0,
)

#: Per-packet pipeline stage durations in nanoseconds (fractions of the
#: 12 us switch forwarding delay).
STAGE_NS_BUCKETS: Tuple[float, ...] = (
    250.0, 500.0, 1000.0, 2000.0, 4000.0, 6000.0, 8000.0, 12000.0, 16000.0, 24000.0,
)

#: Coordinator per-batch stage durations in nanoseconds (wall clock, so only
#: ever populated by ``repro.experiments`` profiling hooks).
BATCH_NS_BUCKETS: Tuple[float, ...] = (
    1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9,
)


class Histogram:
    """Fixed-bucket histogram with integer bucket counts.

    ``counts`` has ``len(bounds) + 1`` slots: bucket ``i`` counts values
    ``<= bounds[i]`` (and above the previous bound); the final slot is the
    overflow bucket for values above every bound.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(bound) for bound in bounds)
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds: Tuple[float, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count: int = 0
        self.sum: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Histogram":
        """A point-mass histogram whose bounds are the distinct samples.

        Every bucket's mass sits exactly on its upper bound, which is what
        makes :meth:`sample_percentile` exact.
        """
        if not samples:
            raise ValueError("cannot build a histogram from zero samples")
        histogram = cls(sorted(set(float(sample) for sample in samples)))
        for sample in samples:
            histogram.observe(sample)
        return histogram

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        counts = self.counts
        for index, value in enumerate(other.counts):
            counts[index] += value
        self.count += other.count
        self.sum += other.sum

    # -- estimators ---------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile; 0.0 on an empty histogram."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be between 0 and 100")
        if self.count == 0:
            return 0.0
        target = (q / 100.0) * self.count
        cumulative = 0
        bounds = self.bounds
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if bucket_count and cumulative >= target:
                lower = bounds[index - 1] if index > 0 else 0.0
                upper = bounds[index] if index < len(bounds) else bounds[-1]
                fraction = (target - previous) / bucket_count
                if fraction < 0.0:
                    fraction = 0.0
                elif fraction > 1.0:
                    fraction = 1.0
                return lower + (upper - lower) * fraction
        return bounds[-1]

    def sample_percentile(self, q: float) -> float:
        """Exact percentile for point-mass histograms (see class docstring).

        Interpolates linearly over the order statistics, treating bucket
        ``i`` as ``counts[i]`` samples all equal to ``bounds[i]`` — the
        invariant :meth:`from_samples` establishes.  Matches
        :func:`repro.analysis.metrics.percentile` exactly.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be between 0 and 100")
        if self.count == 0:
            raise ValueError("cannot take the percentile of an empty histogram")
        if self.counts[-1]:
            raise ValueError("sample_percentile requires a point-mass histogram (no overflow)")
        if self.count == 1:
            for index, bucket_count in enumerate(self.counts[:-1]):
                if bucket_count:
                    return self.bounds[index]
        rank = (q / 100.0) * (self.count - 1)
        low = int(floor(rank))
        high = int(ceil(rank))
        low_value = self._value_at(low)
        if low == high:
            return low_value
        weight = rank - low
        return low_value * (1.0 - weight) + self._value_at(high) * weight

    def _value_at(self, rank: int) -> float:
        """The ``rank``-th order statistic (0-indexed) of a point-mass histogram."""
        cumulative = 0
        for index, bucket_count in enumerate(self.counts[:-1]):
            cumulative += bucket_count
            if rank < cumulative:
                return self.bounds[index]
        return self.bounds[-1]

    # -- export -------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Namespaced counters, gauges, and histograms with commutative merge.

    Counters and gauges are plain dict slots (an add / a store per event);
    histograms are shared :class:`Histogram` objects handed out once via
    :meth:`histogram` so hot-path call sites keep a direct reference and pay
    no dict lookup per observe.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        existing = self.histograms.get(name)
        if existing is not None:
            if existing.bounds != tuple(float(bound) for bound in bounds):
                raise ValueError(f"histogram {name!r} re-registered with different bounds")
            return existing
        created = Histogram(bounds)
        self.histograms[name] = created
        return created

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and gauges add; histograms merge bucket-wise (created here
        with the other side's bounds when absent).  Addition makes the fold
        commutative and associative, so barrier-time folds are independent of
        shard completion order — the executor-invariance contract.
        """
        counters = self.counters
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = self.gauges
        for name, value in other.gauges.items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    # -- transport ----------------------------------------------------------

    def to_delta(self) -> Dict[str, object]:
        """A plain-builtin payload of the current contents (for crossing a
        process boundary on the executor's own return channel), leaving this
        registry reset for the next accumulation window."""
        payload = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: (list(histogram.bounds), list(histogram.counts), histogram.count, histogram.sum)
                for name, histogram in self.histograms.items()
            },
        }
        self.counters = {}
        self.gauges = {}
        for histogram in self.histograms.values():
            histogram.counts = [0] * (len(histogram.bounds) + 1)
            histogram.count = 0
            histogram.sum = 0.0
        return payload

    def fold_delta(self, payload: Dict[str, object]) -> None:
        counters = self.counters
        for name, value in payload["counters"].items():
            counters[name] = counters.get(name, 0) + value
        gauges = self.gauges
        for name, value in payload["gauges"].items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, (bounds, counts, count, total) in payload["histograms"].items():
            histogram = self.histogram(name, bounds)
            for index, value in enumerate(counts):
                histogram.counts[index] += value
            histogram.count += count
            histogram.sum += total

    # -- export -------------------------------------------------------------

    def snapshot_series(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        series: Dict[str, Dict[str, object]] = {}
        for name, value in self.counters.items():
            series[prefix + name] = {"type": "counter", "value": value}
        for name, value in self.gauges.items():
            series[prefix + name] = {"type": "gauge", "value": value}
        for name, histogram in self.histograms.items():
            series[prefix + name] = histogram.as_dict()
        return series
