"""Telemetry bus: every existing stat surface, one namespaced snapshot.

The repo grew its observability organically — :class:`~repro.dataplane.
pipeline.PipelineCounters`, ``ShardedScallopPipeline.shard_load()``,
:class:`~repro.dataplane.sharding.ShardTransportStats`,
:class:`~repro.dataplane.loadstats.FlowLoadTracker` EWMA rows,
:class:`~repro.experiments.coordstats.CoordinatorStats`,
:class:`~repro.dataplane.resources.ResourceAccountant` occupancy, rebalancer
decisions — each with its own ad-hoc dict shape.  :class:`TelemetryBus`
adapts all of them into one :class:`~repro.obs.registry.MetricsRegistry`
under a stable metric namespace:

======================================  =======================================
prefix                                  source
======================================  =======================================
``repro.dataplane.*``                   merged :class:`PipelineCounters`
``repro.dataplane.shardN.*``            per-shard ``shard_load()`` rows + pps
``repro.transport.*``                   process-executor transport counters
                                        (zero-valued under serial/thread, so
                                        the schema is executor-invariant)
``repro.coord.*``                       coordinator stage profile (histograms;
                                        present only when ``profile=True``)
``repro.load.*``                        :class:`FlowLoadTracker` EWMA rows
``repro.rebalance.*``                   planner tallies + migration decisions
``repro.resources.*``                   global resource-ledger utilization
``repro.trunk.*``                       inter-SFU federation counters
                                        (:class:`~repro.cluster.TrunkStats`;
                                        zero-valued on a non-federated
                                        engine, so the schema is
                                        topology-invariant)
``repro.trace.*``                       per-shard packet-lifecycle tracing
``repro.client.e2e_latency_ms``         client-side RTP latency samples
======================================  =======================================

The bus only *reads*: it introspects engines duck-typed through ``getattr``
(both :class:`ScallopPipeline` and :class:`ShardedScallopPipeline` work, and
so would any future engine exposing the same surfaces), merges the per-shard
obs registries commutatively, and restores the executor-invariant total order
over trace records.  Nothing here reads a clock — ``sim_time_s`` is handed in
by the caller from ``Simulator.now``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .registry import LATENCY_MS_BUCKETS, MetricsRegistry
from .tracing import TraceRecord, sorted_trace_records

__all__ = ["SCHEMA", "CORE_SERIES", "TRANSPORT_KEYS", "TRUNK_KEYS", "TelemetryBus"]

#: Version tag stamped into every snapshot; consumers (the CI gate, the
#: federation/SLA layers to come) validate against it before reading series.
SCHEMA = "repro.obs/v1"

#: The keys of :meth:`ShardTransportStats.as_dict`, pinned here so snapshots
#: carry the full transport series (zero-valued) even for executors that move
#: no bytes — serial/thread snapshots stay schema-identical to process ones.
TRANSPORT_KEYS = (
    "batches",
    "batch_bytes_out",
    "result_bytes_in",
    "tracker_bytes_in",
    "migration_bytes_out",
    "migrations_shipped",
    "snapshot_bytes_out",
    "snapshots_shipped",
    "pickle_fallback_records",
)

#: The counter fields of :class:`~repro.cluster.TrunkStats`, pinned like
#: :data:`TRANSPORT_KEYS` so every snapshot carries the federation series
#: (zero-valued on a single-box engine) — a dashboard built against a cluster
#: run reads unchanged against a classic one.  ``subscriptions`` is a gauge
#: accumulated across engines (each box's live subscription count sums into
#: the fleet total).
TRUNK_KEYS = (
    "packets_in",
    "bytes_in",
    "stragglers_forwarded",
    "migrations_in",
    "migrations_out",
    "snapshot_bytes",
)

#: Integer fields of :class:`PipelineCounters` exported as counters.
_COUNTER_FIELDS = (
    "data_plane_packets",
    "data_plane_bytes",
    "cpu_packets",
    "cpu_bytes",
    "replicas_out",
    "adaptation_drops",
    "table_misses",
    "srtp_auth_failures",
)

#: Series every complete SFU snapshot must carry (validated by
#: :func:`repro.obs.export.validate_snapshot`; the CI gate exits non-zero when
#: one is missing or non-finite).  Coordinator stage histograms require the
#: declarative ``profile=True`` knob, which ``--metrics-out`` arms.
CORE_SERIES = (
    "repro.dataplane.data_plane_packets",
    "repro.dataplane.shard0.pps",
    "repro.coord.stage_ns.partition",
    "repro.coord.stage_ns.dispatch",
    "repro.coord.stage_ns.reassemble",
    "repro.transport.batch_bytes_out",
    "repro.transport.result_bytes_in",
    "repro.trunk.packets_in",
    "repro.trunk.subscriptions",
    "repro.client.e2e_latency_ms",
)


class TelemetryBus:
    """Adapt stat surfaces into one registry; emit versioned snapshots."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        #: Series contributed pre-rendered by adapters whose source already
        #: owns histograms (the coordinator stage profile).
        self.extra_series: Dict[str, Dict[str, object]] = {}
        self.traces: List[TraceRecord] = []
        #: Fleet-total trunk subscriptions: ``set_gauge`` overwrites per
        #: engine, so the running total accumulates here across
        #: :meth:`add_engine` calls.
        self._trunk_subscriptions = 0

    # ------------------------------------------------------------------ adapters

    def add_engine(self, engine: object, sim_time_s: float = 0.0) -> None:
        """Fold one pipeline engine's entire stat surface into the bus.

        Works on both the single-datapath and the sharded engine; every
        surface is probed with ``getattr`` so an engine lacking one (e.g. no
        rebalancer armed) simply contributes nothing under that prefix.
        """
        registry = self.registry

        counters = getattr(engine, "counters", None)
        if counters is not None:
            for name in _COUNTER_FIELDS:
                registry.inc("repro.dataplane." + name, int(getattr(counters, name, 0)))
            for label, packets in getattr(counters, "by_class_packets", {}).items():
                registry.inc(f"repro.dataplane.class.{label}.packets", int(packets))

        self._add_shard_rows(engine, counters, sim_time_s)
        self._add_transport(engine)
        self._add_trunk(engine)
        self._add_load_and_rebalance(engine)

        accountant = getattr(engine, "accountant", None)
        if accountant is not None and hasattr(accountant, "utilization"):
            for name, value in accountant.utilization().items():
                registry.set_gauge("repro.resources." + name, float(value))

        stats = getattr(engine, "coordinator_stats", None)
        if stats is not None and hasattr(stats, "snapshot_series"):
            self.extra_series.update(stats.snapshot_series())

        self._add_obs(engine)

    def _add_shard_rows(
        self, engine: object, counters: object, sim_time_s: float
    ) -> None:
        registry = self.registry
        shard_load = getattr(engine, "shard_load", None)
        if callable(shard_load):
            rows = shard_load()
        elif counters is not None:
            # single-datapath engine: synthesize the one-shard row so the
            # per-shard series exist for every engine kind
            accountant = getattr(engine, "accountant", None)
            cells = getattr(accountant, "stream_tracker_cells_used", 0)
            occupancy = 0.0
            if accountant is not None and hasattr(accountant, "utilization"):
                occupancy = accountant.utilization().get("stream_tracker_cells", 0.0)
            rows = [
                {
                    "shard": 0,
                    "data_plane_packets": counters.data_plane_packets,
                    "cpu_packets": counters.cpu_packets,
                    "replicas_out": counters.replicas_out,
                    "stream_tracker_cells": cells,
                    "stream_tracker_occupancy": occupancy,
                }
            ]
        else:
            return
        for index, row in enumerate(rows):
            shard = int(row.get("shard", index))
            prefix = f"repro.dataplane.shard{shard}."
            packets = 0
            for name, value in row.items():
                if name == "shard":
                    continue
                if name == "data_plane_packets":
                    packets = int(value)
                if name.endswith("occupancy") or name.endswith("cells"):
                    registry.set_gauge(prefix + name, float(value))
                else:
                    registry.inc(prefix + name, int(value))
            pps = packets / sim_time_s if sim_time_s > 0.0 else 0.0
            registry.set_gauge(prefix + "pps", pps)

    def _add_transport(self, engine: object) -> None:
        registry = self.registry
        transport: Optional[Dict[str, int]] = None
        transport_stats = getattr(engine, "transport_stats", None)
        if callable(transport_stats):
            transport = transport_stats()
        for key in TRANSPORT_KEYS:
            value = 0 if transport is None else int(transport.get(key, 0))
            registry.inc("repro.transport." + key, value)
        transport_obs = getattr(engine, "transport_obs", None)
        if transport_obs is not None:
            registry.merge(transport_obs)

    def _add_trunk(self, engine: object) -> None:
        """Fold a federated box's trunk counters into ``repro.trunk.*``.

        A :class:`~repro.cluster.ClusterSfu` exports its
        :class:`~repro.cluster.TrunkStats` on the pipeline as
        ``trunk_stats``; a classic engine has none and contributes zeros, so
        the namespace exists in every snapshot (same pinning pattern as
        :data:`TRANSPORT_KEYS`).
        """
        registry = self.registry
        stats = getattr(engine, "trunk_stats", None)
        for key in TRUNK_KEYS:
            value = 0 if stats is None else int(getattr(stats, key, 0))
            registry.inc("repro.trunk." + key, value)
        self._trunk_subscriptions += 0 if stats is None else int(
            getattr(stats, "subscriptions", 0)
        )
        registry.set_gauge("repro.trunk.subscriptions", float(self._trunk_subscriptions))

    def _add_load_and_rebalance(self, engine: object) -> None:
        registry = self.registry
        tracker = getattr(engine, "load_tracker", None)
        if tracker is not None and hasattr(tracker, "snapshot"):
            snap = tracker.snapshot()
            registry.inc("repro.load.batches_observed", int(snap["batches_observed"]))
            registry.set_gauge("repro.load.flows_tracked", float(snap["flows_tracked"]))
            registry.set_gauge("repro.load.skew_ratio", float(snap["skew_ratio"]))
            for shard, rate in enumerate(snap["shard_rates"]):
                registry.set_gauge(f"repro.load.shard{shard}.rate", float(rate))
            for shard, occupancy in enumerate(snap["shard_occupancy"]):
                registry.set_gauge(f"repro.load.shard{shard}.occupancy", float(occupancy))
        rebalancer = getattr(engine, "rebalancer", None)
        if rebalancer is not None:
            registry.inc(
                "repro.rebalance.epochs_planned", int(getattr(rebalancer, "epochs_planned", 0))
            )
            registry.inc(
                "repro.rebalance.flows_migrated", int(getattr(rebalancer, "flows_migrated", 0))
            )
            registry.inc(
                "repro.rebalance.plans_with_migrations",
                int(getattr(rebalancer, "plans_with_migrations", 0)),
            )
            registry.set_gauge(
                "repro.rebalance.last_observed_skew",
                float(getattr(rebalancer, "last_observed_skew", 1.0)),
            )
            registry.set_gauge(
                "repro.rebalance.last_projected_skew",
                float(getattr(rebalancer, "last_projected_skew", 1.0)),
            )
            registry.inc(
                "repro.rebalance.migrations_applied",
                int(getattr(engine, "migrations_applied", 0)),
            )

    def _add_obs(self, engine: object) -> None:
        """Merge per-shard obs registries and restore trace-record order.

        The merge is read-only (per-shard registries are untouched) and
        commutative, and the final :func:`sorted_trace_records` pass erases
        shard completion order — the executor-invariance contract.
        """
        shards = getattr(engine, "shards", None)
        if shards:
            obs_list = [shard.obs for shard in shards if getattr(shard, "obs", None) is not None]
        else:
            datapath = getattr(engine, "datapath", None)
            obs = getattr(datapath, "obs", None) if datapath is not None else None
            obs_list = [obs] if obs is not None else []
        records: List[TraceRecord] = []
        for obs in obs_list:
            self.registry.merge(obs.registry)
            if obs.tracer is not None:
                records.extend(obs.tracer.records)
        if records:
            self.traces.extend(sorted_trace_records(records))

    def add_latency_samples(
        self, samples_ms: Sequence[float], name: str = "repro.client.e2e_latency_ms"
    ) -> None:
        """Fold end-to-end latency samples (milliseconds) into the standard
        latency histogram.  Registers the series even for zero samples so the
        core-series schema holds on traffic-free runs."""
        histogram = self.registry.histogram(name, LATENCY_MS_BUCKETS)
        for sample in samples_ms:
            histogram.observe(float(sample))

    # ------------------------------------------------------------------ export

    def snapshot(self, sim_time_s: float = 0.0) -> Dict[str, object]:
        """The versioned snapshot: schema tag, sim clock, series, traces.

        Plain builtins only (JSON round-trips to an equal object), with the
        trace timeline rendered as nested lists in the total order
        :func:`sorted_trace_records` defines.
        """
        series = self.registry.snapshot_series()
        series.update(self.extra_series)
        return {
            "schema": SCHEMA,
            "sim_time_s": float(sim_time_s),
            "series": series,
            "traces": [
                [arrival_ns, flow, seq, [[stage, offset, duration] for stage, offset, duration in spans]]
                for arrival_ns, flow, seq, spans in self.traces
            ],
        }
