"""Hot-path hook objects the dataplane binds when observability is armed.

``ObsConfig`` is a tiny frozen dataclass carried by
:class:`~repro.dataplane.pipeline.PipelineControlPlane`; because it is plain
picklable data it survives the control-plane snapshot, which is how process
workers learn that (and how) they must arm their own per-shard obs state —
``build_worker_datapath`` reads it exactly like the coordinator-side
constructor does, so worker shards and coordinator shards are instrumented
identically and metric folds stay executor-invariant.

``DatapathObs`` is the per-shard bundle: one private
:class:`~repro.obs.registry.MetricsRegistry` plus one
:class:`~repro.obs.tracing.PacketTracer`.  It is datapath-private state
(never aliased across shards, never part of the control plane), so the
shard-isolation sanitizer has nothing to wrap and the share-nothing rule has
nothing to flag.  The disabled path costs the datapath one attribute load
and branch per packet; the enabled-but-unsampled path adds one memo-dict
probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .registry import MetricsRegistry
from .tracing import PacketTracer, TraceRecord

__all__ = ["ObsConfig", "DatapathObs"]


@dataclass(frozen=True)
class ObsConfig:
    """Declarative observability knobs, snapshot-safe by construction."""

    #: Trace 1 flow in N (deterministic CRC32 over the flow key); 0 disables
    #: lifecycle tracing while keeping the registry armed.
    trace_sample_rate: int = 64
    #: Upper bound on retained raw trace records (histograms keep absorbing
    #: sampled packets after the buffer fills).
    max_trace_records: int = 512


class DatapathObs:
    """Per-shard observability state: one registry, one tracer."""

    __slots__ = ("registry", "tracer", "trace_memo", "shard_id")

    def __init__(
        self,
        config: ObsConfig,
        shard_id: int = 0,
        forwarding_delay_s: float = 12e-6,
    ) -> None:
        self.registry = MetricsRegistry()
        self.shard_id = shard_id
        if config.trace_sample_rate > 0:
            self.tracer: Optional[PacketTracer] = PacketTracer(
                self.registry,
                sample_rate=config.trace_sample_rate,
                max_records=config.max_trace_records,
                forwarding_delay_s=forwarding_delay_s,
            )
            #: Aliased from the tracer so the datapath's per-packet probe is
            #: a single attribute load away from the decision dict.
            self.trace_memo: Dict[object, bool] = self.tracer.trace_memo
        else:
            self.tracer = None
            self.trace_memo = {}

    # -- hot-path entry points ---------------------------------------------

    def classify(self, memo_key: object, ip: str, port: int, ssrc: int) -> bool:
        tracer = self.tracer
        if tracer is None:
            memo = self.trace_memo
            if len(memo) >= PacketTracer.MEMO_LIMIT:
                memo.clear()
            memo[memo_key] = False
            return False
        return tracer.classify(memo_key, ip, port, ssrc)

    def record_media(
        self,
        ip: str,
        port: int,
        ssrc: int,
        seq: int,
        arrived_at: Optional[float],
        size: int,
        parse_hit: bool,
        flow_hit: bool,
        replicas: int,
        dropped: int,
        adapted: bool,
    ) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.record_media(
                ip, port, ssrc, seq, arrived_at, size,
                parse_hit, flow_hit, replicas, dropped, adapted,
            )

    # -- folding ------------------------------------------------------------

    def merge_from(self, other: "DatapathObs") -> None:
        """Read-only fold of another shard's obs state into this one
        (used by snapshot-time merges for serial/thread executors)."""
        self.registry.merge(other.registry)
        if self.tracer is not None and other.tracer is not None:
            self.tracer.fold_records(list(other.tracer.records))

    def to_delta(self) -> Tuple[Dict[str, object], List[TraceRecord]]:
        """Drain accumulated state into a plain-builtin payload.

        Process workers call this after each batch; the payload rides the
        executor's own return channel (no explicit serialization here) and
        the coordinator folds it with :meth:`fold_delta` at the barrier.
        Draining keeps worker-side and coordinator-side state disjoint, so
        nothing is ever double-counted.
        """
        records: List[TraceRecord] = []
        if self.tracer is not None:
            records = self.tracer.take_record_delta()
        return self.registry.to_delta(), records

    def fold_delta(self, payload: Tuple[Dict[str, object], List[TraceRecord]]) -> None:
        registry_delta, records = payload
        self.registry.fold_delta(registry_delta)
        if self.tracer is not None and records:
            self.tracer.fold_records(records)
