"""``repro.obs``: the unified telemetry plane.

One registry model (:mod:`~repro.obs.registry`), deterministic sampled
packet-lifecycle tracing (:mod:`~repro.obs.tracing`), per-shard hook state the
dataplane binds when armed (:mod:`~repro.obs.hooks`), a bus adapting every
existing stat surface into one namespaced snapshot (:mod:`~repro.obs.bus`),
and export paths — canonical JSON, Prometheus text, tables, plus the
versioned-schema validator CI gates on (:mod:`~repro.obs.export`).

Sim-side discipline: nothing in this package reads a wall clock or an RNG —
timestamps come from ``Simulator.now`` via the caller and sampling is CRC32
over the flow key, so archlint's determinism rule holds for every module here
(only ``repro.experiments`` measures real time).
"""

from .bus import CORE_SERIES, SCHEMA, TelemetryBus
from .export import render_prometheus, render_table, to_json, validate_snapshot
from .hooks import DatapathObs, ObsConfig
from .registry import (
    BATCH_NS_BUCKETS,
    LATENCY_MS_BUCKETS,
    SIZE_BYTES_BUCKETS,
    STAGE_NS_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from .tracing import STAGES, PacketTracer, flow_trace_key, sorted_trace_records

__all__ = [
    "BATCH_NS_BUCKETS",
    "CORE_SERIES",
    "DatapathObs",
    "Histogram",
    "LATENCY_MS_BUCKETS",
    "MetricsRegistry",
    "ObsConfig",
    "PacketTracer",
    "SCHEMA",
    "SIZE_BYTES_BUCKETS",
    "STAGES",
    "STAGE_NS_BUCKETS",
    "TelemetryBus",
    "flow_trace_key",
    "render_prometheus",
    "render_table",
    "sorted_trace_records",
    "to_json",
    "validate_snapshot",
]
