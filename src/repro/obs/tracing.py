"""Sampled packet-lifecycle tracing in simulator time.

A :class:`PacketTracer` follows 1-in-N *flows* (not 1-in-N packets: a flow
is either fully traced or not at all, so a traced flow's timeline has no
gaps).  The sampling decision is deterministic — CRC32 over the canonical
``ip:port/ssrc`` flow string, the same keying :func:`repro.dataplane.sharding.
flow_shard` uses — and memoized per flow, so the steady-state cost for an
unsampled flow is one dict probe.  ``random.*`` never appears here; archlint's
determinism rule holds for this module like any ``repro.*`` module.

For each sampled packet the tracer reconstructs the
``ingress -> parse -> table-lookup -> PRE-expand -> rewrite -> egress``
span timeline.  The simulated switch charges one fixed forwarding delay per
packet (``SWITCH_FORWARDING_DELAY_S``), so the per-stage spans are that
delay apportioned by deterministic integer work weights derived from what
the datapath actually did to the packet: a parse-cache miss widens the parse
span, the PRE-expand span grows with the replica count, the rewrite span
grows when rate adaptation rewrote per-target copies.  All span arithmetic
is integer nanoseconds anchored at the datagram's simulated arrival time —
byte-identical across runs and across shard executors.

Per-stage durations also feed fixed-bucket histograms in the owning
:class:`~repro.obs.registry.MetricsRegistry` (``repro.trace.stage_ns.*``),
which is how the p50/p95/p99 stage profile lands in snapshots even after the
bounded raw-record buffer fills up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple
from zlib import crc32

from .registry import MetricsRegistry, SIZE_BYTES_BUCKETS, STAGE_NS_BUCKETS

__all__ = ["STAGES", "PacketTracer", "flow_trace_key", "sorted_trace_records"]

#: The packet lifecycle stages, in pipeline order.
STAGES: Tuple[str, ...] = (
    "ingress",
    "parse",
    "table_lookup",
    "pre_expand",
    "rewrite",
    "egress",
)

#: One trace record: (arrival ns, flow, seq, ((stage, offset ns, duration ns), ...)).
TraceRecord = Tuple[int, str, int, Tuple[Tuple[str, int, int], ...]]


def flow_trace_key(ip: str, port: int, ssrc: int) -> str:
    """The canonical flow string — identical to the sharding key string."""
    return f"{ip}:{port}/{ssrc}"


def sorted_trace_records(records: List[TraceRecord]) -> List[TraceRecord]:
    """Deterministic record order for snapshots: by arrival, flow, seq.

    Shard-merged record lists arrive in executor-dependent order; sorting on
    the (integer, string, integer) prefix restores a total order that is
    identical across serial/thread/process runs over the same traffic.
    """
    return sorted(records)


class PacketTracer:
    """Deterministic 1-in-N flow sampler plus span-timeline recorder."""

    #: Bound on the sampling memo (junk traffic mints unbounded flow keys;
    #: same limit as the datapath's flow-resolution cache, same clear-on-full
    #: policy — decisions are pure functions of the flow key, so re-deriving
    #: after a clear cannot change any sampling outcome).
    MEMO_LIMIT = 1 << 16

    __slots__ = (
        "sample_rate",
        "max_records",
        "forwarding_delay_ns",
        "records",
        "trace_memo",
        "_stage_hists",
        "_packet_bytes",
        "_registry",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        sample_rate: int = 64,
        max_records: int = 512,
        forwarding_delay_s: float = 12e-6,
    ) -> None:
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1 (1 traces every flow)")
        self.sample_rate = sample_rate
        self.max_records = max_records
        self.forwarding_delay_ns = int(round(forwarding_delay_s * 1e9))
        self.records: List[TraceRecord] = []
        #: flow key -> sampling decision; the only state consulted per packet.
        self.trace_memo: Dict[object, bool] = {}
        self._registry = registry
        self._stage_hists = tuple(
            registry.histogram(f"repro.trace.stage_ns.{stage}", STAGE_NS_BUCKETS)
            for stage in STAGES
        )
        self._packet_bytes = registry.histogram(
            "repro.trace.packet_bytes", SIZE_BYTES_BUCKETS
        )

    # -- sampling -----------------------------------------------------------

    def classify(self, memo_key: object, ip: str, port: int, ssrc: int) -> bool:
        """Decide (and memoize under ``memo_key``) whether a flow is traced."""
        memo = self.trace_memo
        if len(memo) >= self.MEMO_LIMIT:
            memo.clear()
        decision = crc32(flow_trace_key(ip, port, ssrc).encode("ascii")) % self.sample_rate == 0
        memo[memo_key] = decision
        return decision

    def wants(self, memo_key: object, ip: str, port: int, ssrc: int) -> bool:
        cached = self.trace_memo.get(memo_key)
        if cached is None:
            return self.classify(memo_key, ip, port, ssrc)
        return cached

    # -- recording ----------------------------------------------------------

    def record_media(
        self,
        ip: str,
        port: int,
        ssrc: int,
        seq: int,
        arrived_at: Optional[float],
        size: int,
        parse_hit: bool,
        flow_hit: bool,
        replicas: int,
        dropped: int,
        adapted: bool,
    ) -> None:
        """Record one sampled media packet's lifecycle.

        All inputs are facts the datapath already holds at its return site;
        nothing here reads a clock.  ``arrived_at`` is the simulated arrival
        time in seconds (None for clockless direct ``process()`` calls).
        """
        # Integer work weights per stage: deterministic, derived purely from
        # what happened to the packet.
        weights = (
            1,                                        # ingress
            1 if parse_hit else 4,                    # parse (miss = full header walk)
            1 if flow_hit else 3,                     # table lookup (miss = 3 tables)
            1 + replicas,                             # PRE expand
            1 + (2 * replicas if adapted else 0) + (1 if dropped else 0),  # rewrite
            1 + replicas,                             # egress
        )
        total_weight = 0
        for weight in weights:
            total_weight += weight
        budget = self.forwarding_delay_ns
        registry_hists = self._stage_hists
        arrival_ns = 0 if arrived_at is None else int(round(arrived_at * 1e9))
        spans: List[Tuple[str, int, int]] = []
        offset = 0
        spent = 0
        for index, stage in enumerate(STAGES):
            if index == len(STAGES) - 1:
                duration = budget - spent  # remainder: spans always sum to the delay
            else:
                duration = budget * weights[index] // total_weight
            spans.append((stage, offset, duration))
            registry_hists[index].observe(float(duration))
            offset += duration
            spent += duration
        self._packet_bytes.observe(float(size))
        self._registry.inc("repro.trace.sampled_packets")
        if len(self.records) < self.max_records:
            self.records.append((arrival_ns, flow_trace_key(ip, port, ssrc), seq, tuple(spans)))
        else:
            self._registry.inc("repro.trace.records_dropped")

    # -- folding ------------------------------------------------------------

    def take_record_delta(self) -> List[TraceRecord]:
        """Drain the raw record buffer (the registry travels separately)."""
        records = self.records
        self.records = []
        return records

    def fold_records(self, records: List[TraceRecord]) -> None:
        budget = self.max_records - len(self.records)
        if budget >= len(records):
            self.records.extend(records)
        else:
            if budget > 0:
                self.records.extend(records[:budget])
            self._registry.inc("repro.trace.records_dropped", len(records) - max(budget, 0))
