"""CLI for telemetry snapshots: pretty-print, validate, or re-render.

Usage::

    python -m repro.obs snap.json                # fixed-width series table
    python -m repro.obs snap.json --validate     # schema gate (exit 1 on fail)
    python -m repro.obs snap.json --prometheus   # text exposition rendering

``--validate`` is what CI runs against the ``churn_storm --smoke
--metrics-out`` snapshot: exit status 1 when the schema tag is wrong, a core
series is missing, or any series carries a NaN/infinite value.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .export import render_prometheus, render_table, validate_snapshot


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate repro.obs telemetry snapshots.",
    )
    parser.add_argument("snapshot", help="path to a snapshot JSON file")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate against the versioned schema; exit 1 on any problem",
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="render the series in Prometheus text-exposition format",
    )
    args = parser.parse_args(argv)

    with open(args.snapshot, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)

    problems = validate_snapshot(snapshot)
    if args.validate:
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        series = snapshot.get("series", {})
        print(
            f"snapshot OK: schema={snapshot.get('schema')} "
            f"series={len(series)} traces={len(snapshot.get('traces', []))}"
        )
        return 0

    if args.prometheus:
        sys.stdout.write(render_prometheus(snapshot))
        return 0

    print(render_table(snapshot))
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
