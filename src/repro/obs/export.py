"""Snapshot export: canonical JSON, Prometheus text exposition, tables.

Three renderings of one :meth:`TelemetryBus.snapshot` dict:

``to_json``
    Canonical JSON — ``sort_keys=True`` so two equal snapshots serialize
    byte-identically (the executor-invariance tests compare these bytes).

``render_prometheus``
    Prometheus text exposition (counters, gauges, cumulative ``_bucket``
    histograms) for scrape-style consumers.

``render_table``
    A fixed-width human table, what ``python -m repro.obs`` prints.

``validate_snapshot`` is the schema gate CI runs against the churn-storm
smoke snapshot: it checks the schema tag, the presence of every
:data:`~repro.obs.bus.CORE_SERIES`, and that no series carries a NaN or
infinite value, returning a list of problems (empty = valid).
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List

from .bus import CORE_SERIES, SCHEMA

__all__ = ["to_json", "render_prometheus", "render_table", "validate_snapshot"]

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def to_json(snapshot: Dict[str, object]) -> str:
    """Canonical JSON rendering (sorted keys, trailing newline)."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def _prom_name(name: str) -> str:
    return _PROM_SANITIZE.sub("_", name)


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Prometheus text-exposition rendering of a snapshot's series."""
    lines: List[str] = []
    series: Dict[str, Dict[str, object]] = snapshot.get("series", {})
    for name in sorted(series):
        body = series[name]
        prom = _prom_name(name)
        kind = body.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {body['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {body['value']}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(body["buckets"], body["counts"]):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {body["count"]}')
            lines.append(f"{prom}_sum {body['sum']}")
            lines.append(f"{prom}_count {body['count']}")
    return "\n".join(lines) + "\n"


def render_table(snapshot: Dict[str, object]) -> str:
    """Fixed-width series table (plus a trace-timeline summary footer)."""
    series: Dict[str, Dict[str, object]] = snapshot.get("series", {})
    rows: List[List[str]] = [["series", "type", "value", "p50", "p95", "p99"]]
    for name in sorted(series):
        body = series[name]
        kind = str(body.get("type", "?"))
        if kind == "histogram":
            rows.append(
                [
                    name,
                    kind,
                    f"n={body['count']}",
                    f"{body['p50']:.3f}",
                    f"{body['p95']:.3f}",
                    f"{body['p99']:.3f}",
                ]
            )
        else:
            value = body.get("value", 0)
            rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
            rows.append([name, kind, rendered, "-", "-", "-"])
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    traces = snapshot.get("traces", [])
    lines.append("")
    lines.append(
        f"schema={snapshot.get('schema')}  sim_time_s={snapshot.get('sim_time_s')}  "
        f"series={len(series)}  trace_records={len(traces)}"
    )
    return "\n".join(lines)


def _finite(value: object) -> bool:
    if isinstance(value, bool):
        return True
    if isinstance(value, (int, float)):
        return math.isfinite(value)
    return True  # non-numeric leaves (strings) are not a finiteness concern


def validate_snapshot(snapshot: object) -> List[str]:
    """Schema-validate a snapshot; returns problems (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not a JSON object"]
    if snapshot.get("schema") != SCHEMA:
        problems.append(
            f"schema mismatch: expected {SCHEMA!r}, found {snapshot.get('schema')!r}"
        )
    sim_time = snapshot.get("sim_time_s")
    if not isinstance(sim_time, (int, float)) or not math.isfinite(sim_time):
        problems.append(f"sim_time_s is not a finite number: {sim_time!r}")
    series = snapshot.get("series")
    if not isinstance(series, dict):
        problems.append("series is missing or not an object")
        return problems
    for name in CORE_SERIES:
        if name not in series:
            problems.append(f"missing core series: {name}")
    for name, body in series.items():
        if not isinstance(body, dict):
            problems.append(f"series {name}: not an object")
            continue
        if body.get("type") not in ("counter", "gauge", "histogram"):
            problems.append(f"series {name}: unknown type {body.get('type')!r}")
        for field_name, value in body.items():
            if isinstance(value, list):
                if not all(_finite(item) for item in value):
                    problems.append(f"series {name}: non-finite value in {field_name}")
            elif not _finite(value):
                problems.append(f"series {name}: non-finite {field_name} = {value!r}")
    return problems
