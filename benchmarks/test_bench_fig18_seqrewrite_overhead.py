"""Figure 18: erroneous retransmission overhead of sequence rewriting vs. loss."""

from benchmarks.conftest import run_once
from repro.experiments import format_sweep, run_rewrite_overhead_sweep

LOSS_RATES = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 0.95]


def test_fig18_rewrite_overhead(benchmark):
    points = run_once(
        benchmark, run_rewrite_overhead_sweep, loss_rates=LOSS_RATES, variant="s_lr", num_frames=6_000
    )
    print()
    print(format_sweep(points))
    by_loss = {p.loss_rate: p.erroneous_retransmission_rate for p in points}
    benchmark.extra_info["overhead_at_10pct_loss"] = round(by_loss[0.1], 4)
    benchmark.extra_info["overhead_at_20pct_loss"] = round(by_loss[0.2], 4)
    benchmark.extra_info["max_overhead"] = round(max(by_loss.values()), 4)
    benchmark.extra_info["paper_values"] = "<5% at 10% loss, ~7.5% at 20% loss, <20% even at extreme loss"
    assert by_loss[0.1] < 0.05
    assert by_loss[0.2] < 0.10
    assert by_loss[0.5] < 0.20
    # at >90% loss the meeting itself is unusable; allow a little slack there
    assert max(by_loss.values()) < 0.25
    assert all(p.duplicates_emitted == 0 for p in points)
