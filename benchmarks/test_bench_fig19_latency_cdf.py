"""Figure 19: RTP forwarding-latency CDF, Scallop vs. Mediasoup-like software."""

from benchmarks.conftest import run_once
from repro.experiments import format_comparison, run_latency_comparison


def test_fig19_forwarding_latency(benchmark):
    result = run_once(benchmark, run_latency_comparison, duration_s=20.0)
    print()
    print(format_comparison(result))
    print("software CDF (ms, fraction):")
    for value, fraction in result.software_cdf[:: max(1, len(result.software_cdf) // 10)]:
        print(f"  {value:8.3f}  {fraction:5.2f}")
    benchmark.extra_info["scallop_median_ms"] = round(result.scallop.median, 4)
    benchmark.extra_info["software_median_ms"] = round(result.software.median, 4)
    benchmark.extra_info["median_improvement"] = round(result.median_improvement, 1)
    benchmark.extra_info["p99_improvement"] = round(result.p99_improvement, 1)
    benchmark.extra_info["paper_values"] = "26.8x lower median, 8.5x lower p99"
    assert result.median_improvement > 8.0
    assert result.p99_improvement > 4.0
