"""Figure 22: bytes a software SFU vs. the Scallop switch agent must process."""

from benchmarks.conftest import run_once
from repro.experiments import run_agent_bytes


def test_fig22_agent_byte_reduction(benchmark, campus_dataset):
    result = run_once(benchmark, run_agent_bytes, campus_dataset, step_s=3600.0)
    print()
    print(f"{'hour':>6}{'software SFU Mbit/s':>21}{'switch agent Mbit/s':>21}")
    for time_s, software_bps, agent_bps in result.series[:: max(1, len(result.series) // 20)]:
        print(f"{time_s / 3600:>6.0f}{software_bps / 1e6:>21.1f}{agent_bps / 1e6:>21.2f}")
    benchmark.extra_info["peak_software_mbps"] = round(result.peak_software_bps / 1e6, 1)
    benchmark.extra_info["peak_agent_mbps"] = round(result.peak_agent_bps / 1e6, 2)
    benchmark.extra_info["reduction_factor"] = round(result.reduction_factor, 1)
    benchmark.extra_info["paper_values"] = "~1250 Mbit/s software vs ~4.4 Mbit/s agent at campus peak (~284x)"
    assert result.reduction_factor > 100
