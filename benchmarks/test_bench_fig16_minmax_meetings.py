"""Figure 16: best-case and worst-case supported meetings, Scallop vs. software."""

from repro.experiments import run_minmax_sweep
from repro.experiments.fig_scalability import DEFAULT_PARTICIPANT_RANGE


def test_fig16_minmax_meetings(benchmark):
    points = benchmark(run_minmax_sweep, DEFAULT_PARTICIPANT_RANGE)
    print()
    print(f"{'participants':>13}{'scallop min':>14}{'scallop max':>14}{'software min':>14}{'software max':>14}")
    for point in points:
        print(
            f"{point.participants:>13}{point.scallop_min:>14.0f}{point.scallop_max:>14.0f}"
            f"{point.software_min:>14.1f}{point.software_max:>14.1f}"
        )
    ten = next(p for p in points if p.participants == 10)
    benchmark.extra_info["scallop_min_10"] = round(ten.scallop_min)
    benchmark.extra_info["scallop_max_10"] = round(ten.scallop_max)
    benchmark.extra_info["software_min_10"] = round(ten.software_min)
    benchmark.extra_info["paper_observation"] = "Scallop supports many more meetings than software at every size"
    for point in points:
        assert point.scallop_min > point.software_min
        assert point.scallop_max > point.software_max
