"""Table 3: Tofino resource utilization under campus-peak and maximum load."""

from benchmarks.conftest import run_once
from repro.experiments import format_report, run_resource_report


def test_table3_resource_utilization(benchmark, campus_dataset):
    report = run_once(benchmark, run_resource_report, campus_dataset)
    print()
    print(format_report(report))
    benchmark.extra_info["peak_campus_egress_gbps"] = round(report.peak_campus_egress_bps / 1e9, 2)
    benchmark.extra_info["max_util_egress_gbps"] = round(report.max_utilization_egress_bps / 1e9, 1)
    benchmark.extra_info["paper_peak_campus_egress_gbps"] = 1.2
    benchmark.extra_info["paper_max_util_egress_gbps"] = 197.0
    fixed_rows = [row for row in report.rows if row.scaling == "fixed"]
    assert len(fixed_rows) >= 10
    assert report.max_utilization_egress_bps < 12.8e12
