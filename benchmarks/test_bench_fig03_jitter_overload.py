"""Figure 3: receive jitter of meeting 1 while participants are added to an
under-provisioned (single-core) software SFU."""

from benchmarks.conftest import run_once
from repro.experiments import OverloadConfig, format_overload, run_overload_experiment

CONFIG = OverloadConfig(
    num_meetings=8,
    participants_per_meeting=10,
    seconds_per_join=0.75,
    media_scale=0.1,
    saturation_participants=50,
    seed=5,
)


def test_fig03_jitter_under_overload(benchmark):
    result = run_once(benchmark, run_overload_experiment, CONFIG)
    print()
    print(format_overload(result))
    tail = result.samples[-5:]
    peak_fps_sample = max(result.samples, key=lambda s: s.normalized_frame_rate_fps)
    benchmark.extra_info["saturation_participants"] = result.saturation_participants
    benchmark.extra_info["p99_jitter_ms_at_end"] = round(max(s.p99_jitter_ms for s in tail), 1)
    benchmark.extra_info["p99_jitter_ms_before_saturation"] = round(peak_fps_sample.p99_jitter_ms, 2)
    benchmark.extra_info["paper_observation"] = "tail jitter exceeds 100 ms past ~80 participants"
    assert result.saturation_participants is not None
    assert max(s.p99_jitter_ms for s in tail) > 50.0
