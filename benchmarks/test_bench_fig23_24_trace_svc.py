"""Figures 23 and 24: per-receiver and per-layer forwarded rates of one Zoom
meeting, showing SVC-based adaptation at the SFU."""

from benchmarks.conftest import run_once
from repro.experiments import run_svc_adaptation_example
from repro.trace.packet_trace import LAYER_PACKET_TYPE


def test_fig23_24_trace_svc_adaptation(benchmark):
    figures = run_once(benchmark, run_svc_adaptation_example)
    print()
    print("forwarded rate towards receiver 17 (kbit/s), per scalability layer:")
    print(f"{'t [s]':>7}{'total':>9}" + "".join(f"{LAYER_PACKET_TYPE[l]:>12}" for l in (0, 1, 2)))
    for sample in figures.receiver_17.samples[::20]:
        layers = "".join(f"{sample.bytes_by_layer.get(l, 0.0) * 8 / 1000:>12.0f}" for l in (0, 1, 2))
        print(f"{sample.time_s:>7.0f}{sample.rate_kbps:>9.0f}{layers}")
    early = [s.rate_kbps for s in figures.receiver_17.samples[30:60]]
    late = [s.rate_kbps for s in figures.receiver_17.samples[-30:]]
    benchmark.extra_info["receiver17_rate_before_kbps"] = round(sum(early) / len(early))
    benchmark.extra_info["receiver17_rate_after_kbps"] = round(sum(late) / len(late))
    benchmark.extra_info["paper_observation"] = "SFU drops a layer for receiver 17 around t=200s"
    assert figures.receiver_rate_dropped()
    # the top layer disappears from the forwarded stream after adaptation
    assert 2 not in figures.receiver_17.samples[-1].bytes_by_layer
    assert 2 in figures.sender.samples[-1].bytes_by_layer
