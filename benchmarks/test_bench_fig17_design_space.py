"""Figure 17: capacity of each replication-tree design and each bottleneck."""

from repro.experiments import format_design_space, run_design_space_sweep
from repro.experiments.fig_scalability import DEFAULT_PARTICIPANT_RANGE


def test_fig17_design_space(benchmark):
    points = benchmark(run_design_space_sweep, DEFAULT_PARTICIPANT_RANGE)
    print()
    print(format_design_space(points))
    ten = next(p for p in points if p.participants == 10)
    benchmark.extra_info["nra_meetings"] = round(ten.nra)
    benchmark.extra_info["ra_r_meetings"] = round(ten.ra_r)
    benchmark.extra_info["ra_sr_meetings_10"] = round(ten.ra_sr)
    benchmark.extra_info["paper_values"] = "NRA 128K, RA-R 42.7K, RA-SR 4.3K at 10 participants"
    assert round(ten.nra) == 131_072
    assert round(ten.ra_sr) == 4_369
    for point in points:
        assert point.nra >= point.ra_r >= point.ra_sr
        assert point.software < point.nra
