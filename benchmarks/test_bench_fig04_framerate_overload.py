"""Figure 4: receive frame rate of meeting 1 while the software SFU saturates."""

from benchmarks.conftest import run_once
from repro.experiments import OverloadConfig, run_overload_experiment

CONFIG = OverloadConfig(
    num_meetings=8,
    participants_per_meeting=10,
    seconds_per_join=0.75,
    media_scale=0.1,
    saturation_participants=50,
    seed=6,
)


def test_fig04_framerate_under_overload(benchmark):
    result = run_once(benchmark, run_overload_experiment, CONFIG)
    series = result.frame_rate_series()
    print()
    print(f"{'participants':>13}{'rx fps (30fps axis)':>21}")
    for participants, fps in series:
        print(f"{participants:>13}{fps:>21.1f}")
    peak = max(fps for _p, fps in series)
    tail = min(fps for _p, fps in series[-5:])
    benchmark.extra_info["peak_rx_fps"] = round(peak, 1)
    benchmark.extra_info["rx_fps_at_end"] = round(tail, 1)
    benchmark.extra_info["paper_observation"] = "frame rate starts dropping around 60 participants, frequent drops beyond"
    assert peak > 15.0
    assert tail < 0.5 * peak
