"""Table 1: control-plane vs. data-plane packet and byte shares.

Paper: a 3-party, 10-minute meeting; 96.46% of packets and 99.65% of bytes are
handled entirely in the data plane.
"""

from benchmarks.conftest import run_once
from repro.experiments import format_table, run_packet_accounting


def test_table1_packet_split(benchmark):
    result = run_once(benchmark, run_packet_accounting, duration_s=60.0)
    print()
    print(format_table(result))
    benchmark.extra_info["data_plane_packet_share"] = round(result.data_plane_packet_share, 4)
    benchmark.extra_info["data_plane_byte_share"] = round(result.data_plane_byte_share, 4)
    benchmark.extra_info["paper_packet_share"] = 0.9646
    benchmark.extra_info["paper_byte_share"] = 0.9965
    assert result.data_plane_packet_share > 0.93
    assert result.data_plane_byte_share > 0.99
