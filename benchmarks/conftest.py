"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavier
end-to-end simulations run exactly once per benchmark (``rounds=1``); the
analytic sweeps use pytest-benchmark's normal calibration.  Each benchmark
stores the regenerated headline numbers in ``benchmark.extra_info`` so the
JSON output doubles as the reproduced dataset.
"""

import pytest

from repro.experiments import build_dataset


@pytest.fixture(scope="session")
def campus_dataset():
    """A campus-scale synthetic Zoom-API dataset shared by the trace benches."""
    return build_dataset(num_meetings=4_000, seed=2022)


def run_once(benchmark, function, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
