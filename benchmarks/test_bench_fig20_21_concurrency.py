"""Figures 20 and 21: concurrent meetings and participants over the campus trace."""

from benchmarks.conftest import run_once
from repro.experiments import run_concurrency


def test_fig20_21_concurrency(benchmark, campus_dataset):
    result = run_once(benchmark, run_concurrency, campus_dataset, step_s=1800.0)
    print()
    print(f"{'hour':>6}{'meetings':>10}{'participants':>14}")
    for time_s, meetings, participants in result.series[:: max(1, len(result.series) // 24)]:
        print(f"{time_s / 3600:>6.0f}{meetings:>10}{participants:>14}")
    benchmark.extra_info["peak_concurrent_meetings"] = result.peak_meetings
    benchmark.extra_info["peak_concurrent_participants"] = result.peak_participants
    benchmark.extra_info["paper_values"] = "~300 concurrent meetings, ~500 concurrent participants at campus peak"
    assert result.peak_meetings > 10
    assert result.peak_participants > result.peak_meetings
