"""Table 2: summary of the 12-hour campus Zoom packet capture."""

from benchmarks.conftest import run_once
from repro.experiments import run_capture_summary


def test_table2_capture_summary(benchmark, campus_dataset):
    summary = run_once(benchmark, run_capture_summary, campus_dataset)
    print()
    print(f"Capture duration      {summary.duration_s / 3600:.0f} h")
    print(f"Zoom packets          {summary.zoom_packets:,} ({summary.zoom_packets_per_second:,.0f}/s)")
    print(f"Zoom flows            {summary.zoom_flows:,}")
    print(f"Zoom data             {summary.zoom_bytes / 1e9:,.0f} GB ({summary.zoom_bitrate_bps / 1e6:.1f} Mbit/s)")
    print(f"RTP media streams     {summary.rtp_media_streams:,}")
    benchmark.extra_info["zoom_packets_per_second"] = round(summary.zoom_packets_per_second)
    benchmark.extra_info["zoom_bitrate_mbps"] = round(summary.zoom_bitrate_bps / 1e6, 1)
    benchmark.extra_info["paper_packets_per_second"] = 42_733
    benchmark.extra_info["paper_bitrate_mbps"] = 222.9
    assert summary.zoom_packets > 1e8
    assert summary.rtp_media_streams > 100
