"""Figure 14: SVC rate adaptation for a constrained participant in a 3-party call."""

from benchmarks.conftest import run_once
from repro.experiments import RateAdaptationConfig, format_rate_adaptation, run_rate_adaptation

CONFIG = RateAdaptationConfig(
    total_duration_s=120.0,
    first_constraint_at_s=30.0,
    second_constraint_at_s=70.0,
    sample_interval_s=2.0,
)


def test_fig14_rate_adaptation(benchmark):
    result = run_once(benchmark, run_rate_adaptation, CONFIG)
    print()
    print(format_rate_adaptation(result))
    print("receive frame rate at the constrained participant (per origin stream):")
    for origin, series in result.receive_frame_rates.items():
        samples = ", ".join(f"{time:.0f}s:{fps:.0f}" for time, fps in series[:: max(1, len(series) // 12)])
        print(f"  {origin}: {samples}")
    benchmark.extra_info["decode_targets"] = {f"{k[0]}->{k[1]}": v for k, v in result.decode_targets.items()}
    benchmark.extra_info["constrained_fps"] = round(result.constrained_frame_rate_fps, 1)
    benchmark.extra_info["unconstrained_fps"] = round(result.unconstrained_frame_rate_fps, 1)
    benchmark.extra_info["freezes"] = result.freezes_at_constrained
    benchmark.extra_info["paper_observation"] = "constrained participant reduced 30->15 fps, no freezes, others unaffected"
    assert result.adapted()
    assert result.freezes_at_constrained == 0
    assert result.unconstrained_frame_rate_fps > 22.0
    assert result.constrained_frame_rate_fps < result.unconstrained_frame_rate_fps
