"""Figure 15: Scallop's scalability improvement over a 32-core server."""

from repro.experiments import run_improvement_sweep
from repro.experiments.fig_scalability import DEFAULT_PARTICIPANT_RANGE, headline_numbers


def test_fig15_improvement_over_software(benchmark):
    points = benchmark(run_improvement_sweep, DEFAULT_PARTICIPANT_RANGE)
    print()
    print(f"{'participants':>13}{'improvement min':>17}{'improvement max':>17}")
    for point in points:
        print(f"{point.participants:>13}{point.improvement_min:>17.1f}{point.improvement_max:>17.1f}")
    headline = headline_numbers()
    benchmark.extra_info["improvement_min"] = round(headline.improvement_min, 1)
    benchmark.extra_info["improvement_max"] = round(headline.improvement_max, 1)
    benchmark.extra_info["paper_improvement_range"] = "7x - 210x"
    assert 2 < headline.improvement_min < 20
    assert 100 < headline.improvement_max < 700
