"""Batched vs. per-packet data-plane throughput across 1-50 meetings, plus
the sharded-engine throughput trajectory.

Not a paper figure: these benchmarks guard the batch fast path and the
flow-sharded engine introduced for the production-scale roadmap.
``process_batch`` must (a) stay byte-identical to the per-packet reference
path and (b) actually amortize the per-packet overhead — at the 50-meeting
scenario it must clear a 3x throughput margin.  The shard sweep additionally
records packets/sec of ``ShardedScallopPipeline`` at k in {1, 4} into an
untracked ``BENCH_shard_throughput.local.json`` artifact (path overridable
via ``BENCH_SHARD_THROUGHPUT_JSON``) so the perf trajectory is tracked
across PRs; the committed ``BENCH_shard_throughput.json`` is the regression
baseline CI gates that fresh artifact against, refreshed only deliberately
(from a CI artifact), never by a routine bench run.

Why the shard sweep asserts *bounded overhead* rather than speedup: with the
in-process ``serial`` executor all shards execute under one CPython GIL, so
k-way sharding does the same Python work as one datapath plus
partition/reassembly — flat throughput is the expected ceiling, and the
number to watch is how little the partitioning costs.  The parallel path is
the ``executor="process"`` escape hatch behind the same API (per-shard worker
processes, exercised for correctness in tests/test_sharded_pipeline.py); its
wall-clock win materializes once per-packet work outweighs pickling, which
this behavioural model's microsecond-scale packets do not.
"""

import dataclasses
import json
import os
import platform

from benchmarks.conftest import run_once
from repro.experiments import (
    format_batch_sweep,
    format_parallelism_matrix,
    format_rebalance_point,
    format_shard_sweep,
    gil_enabled,
    measure_coordinator_profile,
    measure_obs_overhead,
    measure_parallelism_crossover,
    measure_rebalance_point,
    measure_shard_point,
    measure_shard_transport,
    run_batch_throughput_sweep,
    run_parallelism_matrix,
    run_shard_throughput_sweep,
)

MEETING_COUNTS = [1, 10, 50]
SHARD_COUNTS = [1, 4]
SHARD_ARTIFACT_ENV = "BENCH_SHARD_THROUGHPUT_JSON"
# The serial sweep feeds the committed regression baseline, and every
# headline ratio normalizes to the k=1 serial/object point — a single slow
# pass there skews all of them at once, so the serial points get best-of-5
# rather than best-of-3.  The process-executor points keep best-of-3: they
# are neither the gate reference nor plausibility-asserted, and each extra
# repeat re-spawns the per-shard worker pools.
SHARD_REPEATS = 5
PROCESS_REPEATS = 3


def test_batch_pipeline_throughput(benchmark):
    points = run_once(
        benchmark, run_batch_throughput_sweep, meeting_counts=MEETING_COUNTS, repeats=3
    )
    print()
    print(format_batch_sweep(points))
    by_meetings = {p.num_meetings: p for p in points}
    benchmark.extra_info["per_packet_pps_50m"] = round(by_meetings[50].per_packet_pps)
    benchmark.extra_info["batched_pps_50m"] = round(by_meetings[50].batched_pps)
    benchmark.extra_info["speedup_1m"] = round(by_meetings[1].speedup, 2)
    benchmark.extra_info["speedup_50m"] = round(by_meetings[50].speedup, 2)

    # the batch path exists to be a fast path: the 50-meeting scenario (the
    # paper-scale regime, and the best-protected measurement thanks to
    # best-of-3 with GC deferred) must clear a 3x margin; smaller points are
    # reported in extra_info but not asserted on, to keep shared-runner
    # timing noise from failing CI without a code defect
    assert by_meetings[50].speedup >= 3.0


def test_obs_tracing_overhead(benchmark):
    # the telemetry plane's hot-path bargain: at the default 1-in-64 flow
    # sampling, arming repro.obs must cost the k=1 serial engine under 5%
    # of its packets/sec (unsampled flows pay one cached slot load per
    # packet, sampled ones additionally pay integer span reconstruction).
    # The gated overhead is the median of per-repeat back-to-back ratios
    # (order alternating per repeat, measure_shard_point's engine/warmup/GC
    # hygiene), so slow machine drift across the run cancels instead of
    # polluting the comparison the way a best-of-N-vs-best-of-N ratio can.
    point = run_once(benchmark, measure_obs_overhead, num_meetings=50, repeats=5)
    print()
    print(
        f"obs overhead @1-in-{point.sample_rate}: bare {point.bare_pps:,.0f} pps, "
        f"traced {point.traced_pps:,.0f} pps ({point.overhead:+.2%})"
    )
    benchmark.extra_info["bare_pps"] = round(point.bare_pps)
    benchmark.extra_info["traced_pps"] = round(point.traced_pps)
    benchmark.extra_info["overhead"] = round(point.overhead, 4)
    assert point.overhead < 0.05, (
        f"tracing at 1-in-{point.sample_rate} costs {point.overhead:.2%} of k=1 "
        "serial throughput (bar: <5%) — the disabled/unsampled path regressed"
    )


def _point_dict(point):
    data = dataclasses.asdict(point)
    data["pps"] = round(point.pps)
    data["shard_packets"] = list(point.shard_packets)
    data["shard_occupancy"] = [round(o, 6) for o in point.shard_occupancy]
    del data["num_meetings"]
    return data


def _run_full_shard_sweep():
    """The serial object-ingress sweep (regression baseline) plus the
    wire-native serial point and the packed process-executor points."""
    points = run_shard_throughput_sweep(
        shard_counts=SHARD_COUNTS, num_meetings=50, repeats=SHARD_REPEATS
    )
    points.append(
        measure_shard_point(
            1, num_meetings=50, repeats=SHARD_REPEATS, executor="serial", wire_native=True
        )
    )
    for k in SHARD_COUNTS:
        points.append(
            measure_shard_point(
                k, num_meetings=50, repeats=PROCESS_REPEATS, executor="process", wire_native=True
            )
        )
    return points


def test_shard_pipeline_throughput(benchmark):
    points = run_once(benchmark, _run_full_shard_sweep)
    print()
    print(format_shard_sweep(points))
    by_key = {(p.n_shards, p.executor, p.ingress): p for p in points}
    serial_k1 = by_key[(1, "serial", "object")]
    serial_k4 = by_key[(4, "serial", "object")]
    wire_k1 = by_key[(1, "serial", "wire")]
    process_k1 = by_key[(1, "process", "wire")]
    process_k4 = by_key[(4, "process", "wire")]
    speedup = serial_k4.pps / serial_k1.pps
    wire_speedup = wire_k1.pps / serial_k1.pps
    process_speedup = process_k4.pps / serial_k1.pps
    benchmark.extra_info["pps_k1"] = round(serial_k1.pps)
    benchmark.extra_info["pps_k4"] = round(serial_k4.pps)
    benchmark.extra_info["speedup_k4_vs_k1"] = round(speedup, 3)
    benchmark.extra_info["wire_speedup_k1"] = round(wire_speedup, 3)
    benchmark.extra_info["process_k4_vs_serial_k1"] = round(process_speedup, 3)

    transport = measure_shard_transport(n_shards=4, num_meetings=50)

    # Amdahl stage profile of the coordinator loop at k=4 (partition /
    # encode / dispatch / replay / reassemble + serial-fraction estimate);
    # the serial row is what the coordinator-overhead regression gate reads
    coordinator = measure_coordinator_profile(n_shards=4, num_meetings=50)
    for executor, profile in coordinator.items():
        per_packet = profile["stage_ns_per_packet"]
        benchmark.extra_info[f"coord_{executor}_partition_ns_per_pkt"] = round(
            per_packet["partition"]
        )
        fraction = profile["serial_fraction"]
        benchmark.extra_info[f"coord_{executor}_serial_fraction"] = (
            None if fraction is None else round(fraction, 4)
        )

    # skewed-workload sweep: hot senders colocated by the CRC32 default, the
    # placement loop migrates them apart.  Deterministic (packet counts, not
    # timings), so the "rebalance" rows are safe to gate CI on.
    rebalance = measure_rebalance_point(n_shards=4, num_meetings=50)
    print()
    print(format_rebalance_point(rebalance))
    benchmark.extra_info["rebalance_skew_static"] = round(rebalance.skew_static, 3)
    benchmark.extra_info["rebalance_skew_rebalanced"] = round(rebalance.skew_rebalanced, 3)
    benchmark.extra_info["rebalance_skew_reduction"] = round(rebalance.skew_reduction, 3)

    # executor matrix + Amdahl crossover: {serial, thread, process} x k x
    # {plain, srtp}.  Every point records its GIL regime — thread numbers
    # from a GIL build and a free-threaded build are different experiments,
    # and the regression gate refuses to compare across regimes.
    parallelism_points = run_parallelism_matrix()
    print()
    print(format_parallelism_matrix(parallelism_points))
    crossover = measure_parallelism_crossover()
    print(
        f"crossover (thread-k4 > serial-k1 by >{crossover['margin'] - 1.0:.0%}): "
        f"srtp rounds = {crossover['crossover_rounds']} "
        f"(None = never, expected under a GIL)"
    )
    par_by_key = {(p.executor, p.n_shards, p.srtp_rounds): p for p in parallelism_points}
    thread_ratio = (
        par_by_key[("thread", 4, 0)].pps / par_by_key[("serial", 1, 0)].pps
    )
    benchmark.extra_info["thread_k4_vs_serial_k1"] = round(thread_ratio, 3)
    benchmark.extra_info["gil_enabled"] = gil_enabled()

    # default to an untracked *.local.json so no bench run (local or CI) can
    # dirty the committed regression baseline; the env var exists for tools
    # that need the artifact somewhere else.  Written before the asserts on
    # purpose: the fresh measurement can never touch the committed baseline,
    # so a failing run should still leave its point data behind for
    # diagnosis (CI uploads it via if: always()).
    artifact_path = os.environ.get(SHARD_ARTIFACT_ENV, "BENCH_shard_throughput.local.json")
    with open(artifact_path, "w") as handle:
        json.dump(
            {
                "benchmark": "shard_throughput_50_meetings",
                "points": [_point_dict(point) for point in points],
                "speedup_k4_vs_k1": round(speedup, 3),
                "wire_speedup_serial_k1": round(wire_speedup, 3),
                "process_k4_vs_serial_k1": round(process_speedup, 3),
                "transport": {
                    key: (round(value, 2) if isinstance(value, float) else value)
                    for key, value in transport.items()
                },
                "coordinator": coordinator,
                "parallelism": {
                    "python": platform.python_version(),
                    "gil_enabled": gil_enabled(),
                    "thread_k4_vs_serial_k1": round(thread_ratio, 3),
                    "points": [dataclasses.asdict(point) | {"pps": round(point.pps)}
                               for point in parallelism_points],
                    "crossover": crossover,
                },
                "rebalance": {
                    "n_shards": rebalance.n_shards,
                    "num_meetings": rebalance.num_meetings,
                    "num_packets": rebalance.num_packets,
                    "batches": rebalance.batches,
                    "skew_static": round(rebalance.skew_static, 4),
                    "skew_rebalanced": round(rebalance.skew_rebalanced, 4),
                    "skew_reduction": round(rebalance.skew_reduction, 4),
                    "migrations": rebalance.migrations,
                    "shard_packets_static": list(rebalance.shard_packets_static),
                    "shard_packets_rebalanced": list(rebalance.shard_packets_rebalanced),
                },
                "note": (
                    "serial/object points track partition overhead under one GIL "
                    "(flat throughput is the expected ceiling). serial/wire measures "
                    "the wire-native PacketView datapath on the same workload. "
                    "process/wire points run the per-shard worker pools over the "
                    "zero-pickle packed shard transport; 'transport' compares that "
                    "transport's per-batch bytes against pickle.dumps of the same "
                    "object graphs (headers ship, payload bytes stay home). "
                    "'rebalance' is the skewed-workload sweep: Zipf hot senders "
                    "colocated by the CRC32 default vs the same workload with the "
                    "placement control loop armed (deterministic packet counts; "
                    "skew_rebalanced is CI-gated against this baseline). "
                    "'parallelism' is the executor matrix ({serial, thread, "
                    "process} x k x {plain, srtp}) on wire-native ingress: "
                    "srtp_rounds scales SRTP-grade per-packet crypto work, "
                    "every point records its GIL regime, and 'crossover' "
                    "sweeps that work level to find where thread-k4 first "
                    "beats serial-k1 by more than the stated margin "
                    "(crossover_rounds is None under a GIL, where ratios "
                    "hover at parity and only jitter crosses 1.0; on a "
                    "free-threaded interpreter it is the headline Amdahl "
                    "number). thread_k4_vs_serial_k1 "
                    "(plain points) is CI-gated, but only within one GIL "
                    "regime — the gate refuses cross-regime comparisons. "
                    "'coordinator' is the Amdahl stage profile of the sharded "
                    "batch loop at k=4 (per-stage ns, ns/packet, and "
                    "serial_fraction = coordinator-thread share of wall time); "
                    "the serial executor's partition+codec ns/packet is "
                    "CI-gated against this baseline."
                ),
            },
            handle,
            indent=2,
        )

    # GIL-bound by construction (see module docstring): require the
    # partition/reassembly overhead at k=4 to stay within 40% of the k=1
    # engine rather than asserting an impossible serial speedup
    assert speedup >= 0.6
    # ...and the converse plausibility check: under one GIL, k=4 serial does
    # strictly more work than k=1, so a big apparent serial "speedup" means
    # the k=1 reference pass was an outlier-slow run.  That point is both the
    # committed regression baseline and the normalizer for every headline
    # ratio, so fail loudly rather than let such a run be promoted to the
    # baseline (10% headroom for shared-runner jitter on top of best-of-5).
    assert speedup <= 1.1, (
        f"serial k=4/k=1 speedup {speedup:.3f} > 1.1 is implausible under one "
        "GIL; the k=1 serial/object baseline run was likely noise-depressed — "
        "do not promote this run's artifact to the committed baseline"
    )
    # the packed transport's whole point: per-batch serialization volume
    # must shrink by at least 5x against pickled object graphs (it is
    # typically >10x — only headers and rewrite descriptions cross)
    assert transport["total_shrink"] >= 5.0
    # the placement loop's whole point: on the Zipf hot-sender workload the
    # rebalancer must cut max/mean per-shard packet skew at least 2x vs the
    # static CRC32 map (deterministic counts — no timing noise headroom)
    assert rebalance.skew_reduction >= 2.0, (
        f"rebalancer cut skew only {rebalance.skew_reduction:.2f}x "
        f"({rebalance.skew_static:.2f}x -> {rebalance.skew_rebalanced:.2f}x)"
    )
    # srtp plausibility: the profile exists to add per-packet work, so the
    # serial engine must measurably slow down under it (if it doesn't, the
    # datapath stopped protecting and the matrix is measuring nothing)
    assert par_by_key[("serial", 1, 1)].pps < par_by_key[("serial", 1, 0)].pps, (
        "serial srtp point is not slower than the plain point — the SRTP "
        "unprotect/re-protect work is not reaching the datapath"
    )
    # thread-executor plausibility (not a perf gate — that lives in
    # tools/check_bench_regression.py, within one GIL regime): the thread
    # points must exist and be on the same order as serial, i.e. the
    # executor is doing real work, not silently falling back or deadlocking
    assert thread_ratio > 0.2, (
        f"thread-k4/serial-k1 ratio {thread_ratio:.3f} is implausibly low "
        "for an in-process executor"
    )
