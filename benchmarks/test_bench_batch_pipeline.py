"""Batched vs. per-packet data-plane throughput across 1-50 meetings.

Not a paper figure: this benchmark guards the batch fast path introduced for
the production-scale roadmap.  ``process_batch`` must (a) stay byte-identical
to the per-packet reference path and (b) actually amortize the per-packet
overhead — at the 50-meeting scenario it must clear a 3x throughput margin.
"""

from benchmarks.conftest import run_once
from repro.experiments import format_batch_sweep, run_batch_throughput_sweep

MEETING_COUNTS = [1, 10, 50]


def test_batch_pipeline_throughput(benchmark):
    points = run_once(
        benchmark, run_batch_throughput_sweep, meeting_counts=MEETING_COUNTS, repeats=3
    )
    print()
    print(format_batch_sweep(points))
    by_meetings = {p.num_meetings: p for p in points}
    benchmark.extra_info["per_packet_pps_50m"] = round(by_meetings[50].per_packet_pps)
    benchmark.extra_info["batched_pps_50m"] = round(by_meetings[50].batched_pps)
    benchmark.extra_info["speedup_1m"] = round(by_meetings[1].speedup, 2)
    benchmark.extra_info["speedup_50m"] = round(by_meetings[50].speedup, 2)

    # the batch path exists to be a fast path: the 50-meeting scenario (the
    # paper-scale regime, and the best-protected measurement thanks to
    # best-of-3 with GC deferred) must clear a 3x margin; smaller points are
    # reported in extra_info but not asserted on, to keep shared-runner
    # timing noise from failing CI without a code defect
    assert by_meetings[50].speedup >= 3.0
