"""Figure 2: media streams at the SFU vs. participants per meeting."""

from benchmarks.conftest import run_once
from repro.experiments import run_streams_per_meeting


def test_fig02_streams_per_meeting(benchmark, campus_dataset):
    result = run_once(benchmark, run_streams_per_meeting, campus_dataset)
    print()
    print(f"{'participants':>13}{'min':>8}{'median':>9}{'max':>8}{'2N^2 bound':>12}")
    for participants in sorted(result.summary)[:25]:
        low, med, high = result.summary[participants]
        print(f"{participants:>13}{low:>8}{med:>9.0f}{high:>8}{result.upper_bound(participants):>12}")
    ten = result.median_for(10)
    twenty_five = result.median_for(25)
    benchmark.extra_info["median_streams_10_participants"] = ten
    benchmark.extra_info["median_streams_25_participants"] = twenty_five
    benchmark.extra_info["paper_streams_10_participants"] = "up to ~200"
    benchmark.extra_info["paper_streams_25_participants"] = "in excess of 700"
    if ten is not None:
        assert 20 <= ten <= 250
    if twenty_five is not None:
        assert twenty_five <= 1_250  # the theoretical 2 N^2 bound
