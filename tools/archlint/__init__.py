"""archlint: AST-based architecture-invariant checker for the repro tree.

The dataplane's correctness rests on conventions the test suite can only
sample — datapath shards must never write control-plane state, the hot path
must stay zero-pickle, control-plane mutations must bump generations, all
simulation randomness/time must flow through seeded RNGs and the simulator
clock, and the wire path must never materialize ``RtpPacket`` objects.
archlint checks those conventions mechanically at the AST level (stdlib
``ast`` only, no dependencies), so a violation fails CI instead of surfacing
later as flaky nondeterminism or a free-threading data race.

Usage::

    python -m tools.archlint src/            # lint the tree, exit 1 on new findings
    python -m tools.archlint --list-rules    # describe the rules

Per-line suppressions: append ``# archlint: ignore[rule-name]`` (or a bare
``# archlint: ignore`` for all rules) to the flagged line or the comment line
directly above it.  Grandfathered findings live in
``tools/archlint/baseline.txt`` (rule/path/fingerprint triples keyed on the
enclosing scope plus the source text, so they survive line drift); a finding
is *new* — and fails the run — only if it is neither suppressed nor baselined.

The static pass is paired with a runtime shard-isolation sanitizer
(:mod:`repro.dataplane.sanitize`) that catches what the AST can't: mutations
through aliased references, enforced by write-barrier proxies when
``REPRO_SANITIZE=1``.
"""

from .engine import Finding, Report, check_source, load_baseline, run_paths
from .rules import ALL_RULES

__all__ = ["ALL_RULES", "Finding", "Report", "check_source", "load_baseline", "run_paths"]
