"""archlint rule engine: parse, scope, suppress, baseline, report.

Self-contained on the standard library (``ast`` + ``re``): the linter must be
runnable in CI before any project code imports, and must never import the
tree it is judging.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

# --------------------------------------------------------------------------- findings

#: ``# archlint: ignore`` or ``# archlint: ignore[rule-a,rule-b]``
_SUPPRESS_RE = re.compile(r"#\s*archlint:\s*ignore(?:\[([A-Za-z0-9_,\- ]*)\])?")
#: ``# archlint: module=repro.dataplane.pipeline`` near the top of a file
#: overrides path-based module detection (used by lint-fixture files that
#: need to impersonate a scoped module without living under ``src/``).
_MODULE_RE = re.compile(r"#\s*archlint:\s*module=([A-Za-z0-9_.]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, located and fingerprinted."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: ``enclosing.scope::stripped source line`` — stable across pure line
    #: drift, which is what lets the baseline key on it instead of a line
    #: number.
    fingerprint: str
    suppressed: bool = False
    baselined: bool = False

    @property
    def is_new(self) -> bool:
        return not (self.suppressed or self.baselined)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class Report:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (stale grandfather clauses —
    #: reported so they get pruned, but not a failure by themselves).
    unused_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def new(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.is_new]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.new


# --------------------------------------------------------------------------- module context


class ModuleContext:
    """Everything a rule needs about one file: tree, source lines, module."""

    def __init__(self, path: str, source: str, module: Optional[str] = None) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.module = module if module is not None else self._detect_module()

    def _detect_module(self) -> str:
        # honor an explicit override near the top of the file first
        for line in self.lines[:5]:
            match = _MODULE_RE.search(line)
            if match:
                return match.group(1)
        parts = list(Path(self.path).parts)
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        elif "repro" in parts:
            parts = parts[parts.index("repro") :]
        else:
            parts = parts[-1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else "<unknown>"

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressions(self) -> Dict[int, Optional[frozenset]]:
        """Line -> suppressed rule names (``None`` means all rules).

        A comment-only line carrying the directive also covers the next
        source line, so multi-line statements can be suppressed from above.
        """
        table: Dict[int, Optional[frozenset]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            names = match.group(1)
            rules: Optional[frozenset]
            if names is None or not names.strip():
                rules = None
            else:
                rules = frozenset(name.strip() for name in names.split(",") if name.strip())
            targets = [lineno]
            if text.lstrip().startswith("#"):
                targets.append(lineno + 1)
            for target in targets:
                existing = table.get(target, frozenset())
                if rules is None or existing is None:
                    table[target] = None
                else:
                    table[target] = existing | rules
        return table


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing class/function name stack."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.scope: List[str] = []
        self.class_stack: List[str] = []

    # -- scope bookkeeping ---------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def _enter_function(self, node) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    # -- helpers -------------------------------------------------------------

    @property
    def qualname(self) -> str:
        return ".".join(self.scope) if self.scope else "<module>"

    def enclosing_class(self) -> Optional[str]:
        """Nearest enclosing class name, if any (functions don't reset it:
        a method's nested helper still counts as inside the class)."""
        return self.class_stack[-1] if self.class_stack else None

    def in_function(self, *names: str) -> bool:
        return any(name in self.scope for name in names)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------------- baseline

BaselineKey = Tuple[str, str, str]  # (rule, path, fingerprint)


def load_baseline(path) -> Dict[BaselineKey, int]:
    """Parse a baseline file into a multiset of (rule, path, fingerprint).

    Format: tab-separated ``rule<TAB>path<TAB>fingerprint`` lines; ``#``
    comments (the justification for each entry) and blank lines are ignored.
    """
    counts: Dict[BaselineKey, int] = {}
    text = Path(path).read_text(encoding="utf-8")
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise ValueError(f"malformed baseline line (want rule<TAB>path<TAB>fingerprint): {raw!r}")
        key = (parts[0], parts[1], parts[2])
        counts[key] = counts.get(key, 0) + 1
    return counts


def format_baseline_entry(finding: Finding) -> str:
    return f"{finding.rule}\t{finding.path}\t{finding.fingerprint}"


# --------------------------------------------------------------------------- running


def _normalize_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_py_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            yield path


def check_source(
    source: str,
    *,
    path: str = "<fixture>",
    module: Optional[str] = None,
    rules: Optional[Iterable] = None,
    baseline: Optional[Dict[BaselineKey, int]] = None,
) -> List[Finding]:
    """Lint one source string (the unit-test entry point).

    ``module`` overrides path-based module detection so fixtures can
    impersonate scoped modules; ``baseline`` is consumed in place (pass a
    copy if you need it afterwards).
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    ctx = ModuleContext(path, source, module=module)
    suppressions = ctx.suppressions()
    remaining = baseline if baseline is not None else {}
    findings: List[Finding] = []
    for rule in rules:
        for lineno, col, message in rule.check(ctx):
            fingerprint = f"{_scope_at(ctx, lineno)}::{ctx.line_text(lineno).strip()}"
            suppressed = _is_suppressed(suppressions, lineno, rule.name)
            baselined = False
            if not suppressed:
                key = (rule.name, path, fingerprint)
                if remaining.get(key, 0) > 0:
                    remaining[key] -= 1
                    baselined = True
            findings.append(
                Finding(
                    rule=rule.name,
                    path=path,
                    line=lineno,
                    col=col,
                    message=message,
                    fingerprint=fingerprint,
                    suppressed=suppressed,
                    baselined=baselined,
                )
            )
    findings.sort(key=lambda finding: (finding.line, finding.col, finding.rule))
    return findings


def _is_suppressed(suppressions: Dict[int, Optional[frozenset]], lineno: int, rule: str) -> bool:
    if lineno not in suppressions:
        return False
    rules = suppressions[lineno]
    return rules is None or rule in rules


def _scope_at(ctx: ModuleContext, lineno: int) -> str:
    """Qualname of the innermost class/function whose span covers ``lineno``."""
    best = "<module>"
    best_span = float("inf")

    class _Finder(ScopedVisitor):
        def _note(self, node) -> None:
            nonlocal best, best_span
            end = getattr(node, "end_lineno", None) or node.lineno
            if node.lineno <= lineno <= end and (end - node.lineno) < best_span:
                best = self.qualname
                best_span = end - node.lineno

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.scope.append(node.name)
            self._note(node)
            self.generic_visit(node)
            self.scope.pop()

        def _enter_function(self, node) -> None:
            self.scope.append(node.name)
            self._note(node)
            self.generic_visit(node)
            self.scope.pop()

        visit_FunctionDef = _enter_function
        visit_AsyncFunctionDef = _enter_function

    _Finder(ctx).visit(ctx.tree)
    return best


def run_paths(
    paths: Sequence[str],
    *,
    baseline: Optional[Dict[BaselineKey, int]] = None,
    rules: Optional[Iterable] = None,
) -> Report:
    """Lint every ``.py`` file under ``paths`` against the rule set."""
    remaining: Dict[BaselineKey, int] = dict(baseline or {})
    report = Report()
    for file_path in iter_py_files(paths):
        normalized = _normalize_path(file_path)
        source = file_path.read_text(encoding="utf-8")
        report.findings.extend(
            check_source(source, path=normalized, rules=rules, baseline=remaining)
        )
        report.files_checked += 1
    report.unused_baseline = [key for key, count in remaining.items() if count > 0]
    return report
