# archlint: module=repro.obs.tracing
"""Violating fixture proving the telemetry plane sits inside archlint's
determinism jurisdiction: ``repro.obs`` is ordinary ``repro.*`` simulation
code, so wall-clock reads and bare RNG calls in it must flag exactly as they
would in the dataplane.  (Real obs code takes timestamps from ``Simulator.now``
via its callers and samples flows with CRC32.)  CI runs the fixtures
directory with ``--no-baseline`` and requires a non-zero exit.  DO NOT "fix"
these violations.
"""

import random
import time


def record_media_span(registry):
    # rule 4: determinism — a tracer must never stamp records with wall time
    arrived_at = time.time()
    registry.observe(arrived_at)
    return arrived_at


def classify_flow(flow_key):
    # rule 4: determinism — sampling must be CRC32 over the flow key, not RNG
    return random.random() < 1 / 64
