# archlint: module=repro.dataplane.pipeline
"""Purpose-built violating fixture: one finding per archlint rule.

CI runs ``python -m tools.archlint --no-baseline tools/archlint/fixtures``
and requires a non-zero exit, proving the gate actually gates.  The module
override on line 1 puts this file in the scoped rules' jurisdiction without
it living under ``src/``.  DO NOT "fix" these violations.
"""

import pickle  # rule 2: zero-pickle — import outside the transport whitelist
import random


class PipelineDatapath:
    def _process_media_fast(self, datagram):
        self.pre.copies_produced += 1  # rule 1: share-nothing — datapath writes PRE state
        self.stream_table.install(("flow", 1), datagram)  # rule 3 (and 1): bypasses control plane
        return pickle.dumps(datagram)

    def _process_media_wire(self, datagram):
        jitter = random.random()  # rule 4: determinism — bare module-level RNG
        packet = RtpPacket(ssrc=1, sequence_number=int(jitter * 100))  # rule 5: wire-hygiene
        return packet


class RtpPacket:
    def __init__(self, ssrc, sequence_number):
        self.ssrc = ssrc
        self.sequence_number = sequence_number
