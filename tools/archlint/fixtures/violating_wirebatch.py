# archlint: module=repro.rtp.wirebatch
"""Violating fixture for the wire-hygiene rule's wirebatch jurisdiction.

The columnar bulk-extraction module is fast path in its entirety, so
constructing ``RtpPacket`` (or round-tripping through ``to_packet``)
anywhere in it must be flagged — including module scope and helper
functions, not just ``_process_media_wire``-named scopes.  CI runs the
fixtures directory with ``--no-baseline`` and requires a non-zero exit,
proving the extended rule bites.  DO NOT "fix" these violations.
"""


def from_datagrams(datagrams):
    rows = []
    for datagram in datagrams:
        # rule 5: wire-hygiene — columnar pass materializes the object model
        packet = RtpPacket(ssrc=1, sequence_number=0)
        rows.append(packet)
    return rows


def replay_payloads(view, seqs):
    # rule 5: wire-hygiene — object-model round trip inside the bulk mutator
    return [view.to_packet() for _ in seqs]


class RtpPacket:
    def __init__(self, ssrc, sequence_number):
        self.ssrc = ssrc
        self.sequence_number = sequence_number
