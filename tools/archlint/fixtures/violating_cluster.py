# archlint: module=repro.cluster.trunk
"""Violating fixture proving the federation layer sits inside archlint's
jurisdiction: ``repro.cluster`` is ordinary ``repro.*`` simulation code, so
the determinism rule (no wall-clock, no bare RNG) and the zero-pickle rule
(cross-SFU snapshots ship packed register images, never pickled object
graphs) must flag here exactly as they do in the dataplane.  (Real cluster
code stamps nothing with wall time, drains on the simulator clock, and ships
``pack_rewriter_state`` bytes.)  CI runs the fixtures directory with
``--no-baseline`` and requires a non-zero exit.  DO NOT "fix" these
violations.
"""

import pickle
import random
import time


def snapshot_meeting(rewriters):
    # zero-pickle: a migration snapshot must pack register images, not
    # serialize the rewriter object graph
    return pickle.dumps(rewriters)


def drain_deadline():
    # rule 4: determinism — drain windows expire on the simulator clock,
    # never wall time
    return time.time() + 0.05


def pick_migration_target(members):
    # rule 4: determinism — placement must be a pure function of the spec
    return members[int(random.random() * len(members))]
