"""CLI: ``python -m tools.archlint src/`` — exit non-zero on new findings."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import format_baseline_entry, load_baseline, run_paths
from .rules import ALL_RULES

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.txt"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.archlint",
        description="AST-based architecture-invariant checker (run from the repo root).",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline file of grandfathered findings (default: tools/archlint/baseline.txt)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline (report everything)"
    )
    parser.add_argument("--list-rules", action="store_true", help="describe the rule set and exit")
    parser.add_argument(
        "--verbose", action="store_true", help="also show suppressed and baselined findings"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name}:")
            print(f"    {rule.description}")
        return 0

    baseline = {}
    if not args.no_baseline and Path(args.baseline).is_file():
        baseline = load_baseline(args.baseline)

    report = run_paths(args.paths or ["src"], baseline=baseline)

    for finding in report.new:
        print(finding.render())
    if args.verbose:
        for finding in report.suppressed:
            print(f"{finding.render()}  (suppressed)")
        for finding in report.baselined:
            print(f"{finding.render()}  (baselined)")
    for key in report.unused_baseline:
        print(f"warning: stale baseline entry matched nothing: {key[0]}\t{key[1]}\t{key[2]}")

    new = len(report.new)
    print(
        f"archlint: {report.files_checked} files, {new} new finding(s), "
        f"{len(report.suppressed)} suppressed, {len(report.baselined)} baselined"
    )
    if new:
        print("add a '# archlint: ignore[rule]' suppression with a justification, fix the")
        print("violation, or (for grandfathered findings only) append the baseline entry:")
        for finding in report.new:
            print(f"  {format_baseline_entry(finding)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
