"""The archlint rule set: five architecture invariants of the repro tree.

Each rule is grounded in a specific contract the dataplane split established
(see ROADMAP "Enforced invariants"):

``share-nothing``
    Datapath code (``PipelineDatapath`` methods, ``dataplane/parser.py``,
    ``dataplane/shardcodec.py``, and the worker path in
    ``dataplane/sharding.py``) must never *write* control-plane-owned state —
    tables, PRE, register file, placement table, accountant.  Reads are the
    interface (``lookup``/``peek``/``read``/``replicate``); every write must
    go through a ``PipelineControlPlane`` method.  This is the invariant the
    free-threaded-shards migration depends on: a write that is benign under
    the GIL is a data race under 3.13t.

``zero-pickle``
    ``pickle``/``marshal``/``copy.deepcopy`` stay off the hot path.  The only
    sanctioned sites are the control-plane snapshot and the documented
    per-record fallbacks in ``sharding.py``/``shardcodec.py`` (the runtime
    twin of this whitelist is ``transport.pickle_fallback_records``).

``generation-discipline``
    Match-action tables, the PRE's trees, and the placement table may only be
    mutated through APIs that bump the corresponding write generation —
    ``install``/``remove`` on the table attributes of the control plane from
    inside ``PipelineControlPlane``, and never by poking the underlying
    ``_entries``/``_trees``/``_cells`` dicts directly (datapath caches key
    their freshness on those generations).

``determinism``
    Simulation code takes a seeded ``random.Random`` and reads
    ``Simulator.now``; bare module-level ``random.*`` calls, unseeded
    ``random.Random()``, and wall-clock reads (``time.time``,
    ``datetime.now``, ...) make runs unreproducible.  Everything under
    ``repro.*`` is in scope except ``repro.experiments`` (benchmarks
    legitimately measure wall time).

``wire-hygiene``
    The wire-native fast path (``_process_media_wire``, ``PacketView``
    methods) must never construct ``RtpPacket`` dataclasses or round-trip
    through ``to_packet``/``from_packet`` — materializing the object model is
    exactly the cost the wire path exists to avoid.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .engine import ModuleContext, ScopedVisitor, dotted_name

RawFinding = Tuple[int, int, str]  # (line, col, message)


def _chain_parts(name: Optional[str]) -> List[str]:
    return name.split(".") if name else []


# --------------------------------------------------------------------------- rule 1

#: Attribute names that resolve to control-plane-owned objects when they
#: appear anywhere in a receiver chain (``self.pre``, ``state.control``,
#: ``engine.control.stream_table``, ...).
CONTROL_OWNED_SEGMENTS: FrozenSet[str] = frozenset(
    {
        "control",
        "pre",
        "stream_table",
        "replica_table",
        "adaptation_table",
        "feedback_table",
        "ssrc_table",
        "placement_table",
        "stream_trackers",
        "stream_indices",
        "accountant",
    }
)

#: Method names that mutate control-plane structures.  The *read* API —
#: ``lookup``/``peek``/``read``/``entries``/``replicate``/``note_replication``
#: — is deliberately absent: reads (and the PRE's sanctioned data-plane
#: accounting) are how a datapath is supposed to touch shared state.
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "install",
        "install_many",
        "remove",
        "write",
        "clear",
        "allocate",
        "release",
        "create_tree",
        "destroy_tree",
        "add_node",
        "remove_node",
        "install_stream",
        "remove_stream",
        "install_replica_target",
        "remove_replica_target",
        "install_adaptation",
        "update_adaptation_templates",
        "remove_adaptation",
        "install_feedback_rule",
        "remove_feedback_rule",
        "install_placement",
        "remove_placement",
        "remove_placements_for",
        "reattribute_ssrc_charges",
        "set_charge_scope_router",
        "attach_datapath",
        "_write_tracker",
        "allocate_stream_state",
        "release_stream_state",
        "allocate_tree",
        "release_tree",
        "defer_version_bumps",
        "commit_version_bumps",
        "defer_generation_bumps",
        "commit_generation_bumps",
        "batched_writes",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "append",
        "extend",
    }
)


class ShareNothingRule:
    """Rule 1: datapath scope must not mutate control-plane-owned state."""

    name = "share-nothing"
    description = (
        "attribute stores or mutating-method calls on control-plane-owned "
        "objects from datapath code (PipelineDatapath methods, dataplane/"
        "parser.py, dataplane/shardcodec.py, worker paths in dataplane/"
        "sharding.py)"
    )

    _WHOLE_MODULES = {"repro.dataplane.parser", "repro.dataplane.shardcodec"}

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        whole_module = ctx.module in self._WHOLE_MODULES
        worker_module = ctx.module == "repro.dataplane.sharding"
        findings: List[RawFinding] = []

        class _Visitor(ScopedVisitor):
            def _in_scope(self) -> bool:
                if whole_module:
                    return True
                if self.enclosing_class() == "PipelineDatapath":
                    return True
                if worker_module and any(name.startswith("_worker") for name in self.scope):
                    return True
                return False

            def _flag_target(self, target: ast.AST) -> None:
                # only dotted stores can reach shared state; a bare-name
                # rebind (``control = ...``) is a local
                if isinstance(target, ast.Subscript):
                    chain = _chain_parts(dotted_name(target.value))
                    if set(chain) & CONTROL_OWNED_SEGMENTS:
                        findings.append(
                            (
                                target.lineno,
                                target.col_offset,
                                f"datapath scope {self.qualname!r} stores into "
                                f"control-plane-owned {'.'.join(chain)}[...]",
                            )
                        )
                elif isinstance(target, ast.Attribute):
                    chain = _chain_parts(dotted_name(target))
                    # the final attribute is what's being written; the owner
                    # is everything before it
                    if set(chain[:-1]) & CONTROL_OWNED_SEGMENTS:
                        findings.append(
                            (
                                target.lineno,
                                target.col_offset,
                                f"datapath scope {self.qualname!r} writes "
                                f"control-plane-owned attribute {'.'.join(chain)}",
                            )
                        )
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        self._flag_target(element)

            def visit_Assign(self, node: ast.Assign) -> None:
                if self._in_scope():
                    for target in node.targets:
                        self._flag_target(target)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                if self._in_scope():
                    self._flag_target(node.target)
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                if self._in_scope() and node.value is not None:
                    self._flag_target(node.target)
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                if self._in_scope() and isinstance(node.func, ast.Attribute):
                    method = node.func.attr
                    if method in MUTATING_METHODS:
                        chain = _chain_parts(dotted_name(node.func.value))
                        if set(chain) & CONTROL_OWNED_SEGMENTS:
                            findings.append(
                                (
                                    node.lineno,
                                    node.col_offset,
                                    f"datapath scope {self.qualname!r} calls mutating "
                                    f"method {'.'.join(chain)}.{method}() on "
                                    "control-plane-owned state",
                                )
                            )
                self.generic_visit(node)

        _Visitor(ctx).visit(ctx.tree)
        return iter(findings)


# --------------------------------------------------------------------------- rule 2

#: module -> enclosing qualnames where pickle use is sanctioned
#: (``<module>`` covers the import statement itself).
PICKLE_WHITELIST: Dict[str, FrozenSet[str]] = {
    # control-plane snapshot ship/load (generation change only) and the
    # worker-side replica rebuild
    "repro.dataplane.sharding": frozenset(
        {"<module>", "_worker_process_batch", "ProcessShardRunner.run_batches"}
    ),
    # documented per-record fallbacks for traffic the packed forms cannot
    # express (exotic payload/rewriter types); runtime-counted in
    # transport.pickle_fallback_records
    "repro.dataplane.shardcodec": frozenset(
        {
            "<module>",
            "encode_ingress_batch",
            "decode_ingress_batch",
            "encode_result_batch",
            "decode_result_batch",
            "encode_tracker_updates",
            "decode_tracker_updates",
        }
    ),
}

_PICKLE_MODULES = frozenset({"pickle", "cPickle", "marshal", "dill"})


class ZeroPickleRule:
    """Rule 2: pickle/deepcopy/marshal only at whitelisted transport sites."""

    name = "zero-pickle"
    description = (
        "pickle/marshal imports or pickle/marshal/copy.deepcopy calls outside "
        "the whitelisted control-plane-snapshot and documented-fallback sites "
        "in sharding.py/shardcodec.py"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        whitelist = PICKLE_WHITELIST.get(ctx.module, frozenset())
        findings: List[RawFinding] = []

        class _Visitor(ScopedVisitor):
            def _allowed(self) -> bool:
                return self.qualname in whitelist

            def visit_Import(self, node: ast.Import) -> None:
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _PICKLE_MODULES and not self._allowed():
                        findings.append(
                            (node.lineno, node.col_offset, f"import of {alias.name!r} outside the pickle whitelist")
                        )
                self.generic_visit(node)

            def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
                root = (node.module or "").split(".")[0]
                if root in _PICKLE_MODULES and not self._allowed():
                    findings.append(
                        (node.lineno, node.col_offset, f"import from {node.module!r} outside the pickle whitelist")
                    )
                if root == "copy" and any(alias.name == "deepcopy" for alias in node.names):
                    findings.append(
                        (node.lineno, node.col_offset, "import of copy.deepcopy (deep object-graph copies are off the hot path)")
                    )
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                name = dotted_name(node.func)
                if name:
                    parts = name.split(".")
                    if parts[0] in _PICKLE_MODULES and not self._allowed():
                        findings.append(
                            (node.lineno, node.col_offset, f"call to {name}() outside the pickle whitelist")
                        )
                    elif name == "copy.deepcopy" or name == "deepcopy":
                        findings.append(
                            (node.lineno, node.col_offset, f"call to {name}() (deep object-graph copies are off the hot path)")
                        )
                self.generic_visit(node)

        _Visitor(ctx).visit(ctx.tree)
        return iter(findings)


# --------------------------------------------------------------------------- rule 3

#: The control plane's generation-stamped table attributes.
TABLE_ATTRIBUTES: FrozenSet[str] = frozenset(
    {
        "stream_table",
        "replica_table",
        "adaptation_table",
        "feedback_table",
        "ssrc_table",
        "placement_table",
    }
)

#: Private backing dicts whose direct mutation bypasses the generation bump.
_BACKING_DICTS = frozenset({"_entries", "_trees", "_cells"})
_BACKING_OWNERS = {"repro.dataplane.tables", "repro.dataplane.pre"}


class GenerationDisciplineRule:
    """Rule 3: table/PRE/placement mutations only via generation-bumping APIs."""

    name = "generation-discipline"
    description = (
        "direct mutation of match-action table / PRE / placement state outside "
        "PipelineControlPlane methods (or of the private backing dicts outside "
        "their defining modules) — datapath caches key freshness on the "
        "generation such mutations must bump"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        findings: List[RawFinding] = []
        backing_owner = ctx.module in _BACKING_OWNERS

        class _Visitor(ScopedVisitor):
            def _in_control_plane(self) -> bool:
                return (
                    ctx.module == "repro.dataplane.pipeline"
                    and self.enclosing_class() == "PipelineControlPlane"
                )

            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Attribute) and not self._in_control_plane():
                    method = node.func.attr
                    chain = _chain_parts(dotted_name(node.func.value))
                    if method in ("install", "remove", "clear") and chain and chain[-1] in TABLE_ATTRIBUTES:
                        findings.append(
                            (
                                node.lineno,
                                node.col_offset,
                                f"{self.qualname!r} calls {'.'.join(chain)}.{method}() outside "
                                "PipelineControlPlane (table writes must go through the "
                                "control plane so the version bump is observable)",
                            )
                        )
                    elif (
                        not backing_owner
                        and method in MUTATING_METHODS
                        and set(chain) & _BACKING_DICTS
                    ):
                        findings.append(
                            (
                                node.lineno,
                                node.col_offset,
                                f"{self.qualname!r} mutates private backing dict "
                                f"{'.'.join(chain)}.{method}() — bypasses the generation bump",
                            )
                        )
                self.generic_visit(node)

            def _flag_store(self, target: ast.AST) -> None:
                if backing_owner or self._in_control_plane():
                    return
                if isinstance(target, ast.Subscript):
                    chain = _chain_parts(dotted_name(target.value))
                    if chain and (chain[-1] in _BACKING_DICTS or set(chain) & _BACKING_DICTS):
                        findings.append(
                            (
                                target.lineno,
                                target.col_offset,
                                f"{self.qualname!r} stores into private backing dict "
                                f"{'.'.join(chain)}[...] — bypasses the generation bump",
                            )
                        )

            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._flag_store(target)
                self.generic_visit(node)

            def visit_Delete(self, node: ast.Delete) -> None:
                for target in node.targets:
                    self._flag_store(target)
                self.generic_visit(node)

        _Visitor(ctx).visit(ctx.tree)
        return iter(findings)


# --------------------------------------------------------------------------- rule 4

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)


class DeterminismRule:
    """Rule 4: seeded RNGs and the simulator clock only."""

    name = "determinism"
    description = (
        "bare random.* module-level calls, unseeded random.Random(), or "
        "wall-clock reads (time.time/time.monotonic/datetime.now) in "
        "simulation code — randomness must flow through a seeded "
        "random.Random and time through Simulator.now"
    )

    def _in_scope(self, module: str) -> bool:
        return module.startswith("repro.") and not module.startswith("repro.experiments")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if not self._in_scope(ctx.module):
            return iter(())
        findings: List[RawFinding] = []

        class _Visitor(ScopedVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                name = dotted_name(node.func)
                if name:
                    parts = name.split(".")
                    if parts[0] == "random" and len(parts) == 2:
                        attr = parts[1]
                        if attr == "Random":
                            if not node.args and not node.keywords:
                                findings.append(
                                    (
                                        node.lineno,
                                        node.col_offset,
                                        "unseeded random.Random() — thread a seed from the scenario",
                                    )
                                )
                        elif attr == "SystemRandom":
                            findings.append(
                                (node.lineno, node.col_offset, "random.SystemRandom is never reproducible")
                            )
                        else:
                            findings.append(
                                (
                                    node.lineno,
                                    node.col_offset,
                                    f"bare module-level random.{attr}() — use a seeded "
                                    "per-component random.Random",
                                )
                            )
                    elif name in _CLOCK_CALLS:
                        findings.append(
                            (
                                node.lineno,
                                node.col_offset,
                                f"wall-clock read {name}() in simulation code — read Simulator.now",
                            )
                        )
                self.generic_visit(node)

        _Visitor(ctx).visit(ctx.tree)
        return iter(findings)


# --------------------------------------------------------------------------- rule 5


class WireHygieneRule:
    """Rule 5: the wire fast path never materializes RtpPacket objects."""

    name = "wire-hygiene"
    description = (
        "constructing RtpPacket (or calling to_packet/from_packet) inside "
        "_process_media_wire, PacketView fast-path methods, or the columnar "
        "wirebatch module — materializing the object model is the cost the "
        "wire path exists to avoid"
    )

    #: PacketView methods allowed to touch RtpPacket: the two explicit
    #: conversion escape hatches.
    _CONVERSIONS = frozenset({"to_packet", "from_packet"})

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        wire_module = ctx.module == "repro.rtp.wire"
        # the columnar bulk-extraction module is fast path in its entirety:
        # every function there exists to replace per-packet loops, so there
        # is no non-fast-path scope to exempt (reading RtpPacket *attributes*
        # for object rows is fine — only construction/conversion is flagged)
        batch_module = ctx.module == "repro.rtp.wirebatch"
        findings: List[RawFinding] = []
        conversions = self._CONVERSIONS

        class _Visitor(ScopedVisitor):
            def _in_fast_path(self) -> bool:
                if batch_module:
                    return True
                if self.in_function("_process_media_wire"):
                    return True
                if wire_module and self.enclosing_class() == "PacketView":
                    return not any(name in conversions for name in self.scope)
                return False

            def visit_Call(self, node: ast.Call) -> None:
                if self._in_fast_path():
                    name = dotted_name(node.func)
                    if name:
                        parts = name.split(".")
                        if parts[-1] == "RtpPacket":
                            findings.append(
                                (
                                    node.lineno,
                                    node.col_offset,
                                    f"{self.qualname!r} constructs RtpPacket on the wire fast path",
                                )
                            )
                        elif parts[-1] in conversions and len(parts) > 1:
                            findings.append(
                                (
                                    node.lineno,
                                    node.col_offset,
                                    f"{self.qualname!r} calls {parts[-1]}() on the wire fast path "
                                    "(object-model round trip)",
                                )
                            )
                self.generic_visit(node)

        _Visitor(ctx).visit(ctx.tree)
        return iter(findings)


ALL_RULES = (
    ShareNothingRule(),
    ZeroPickleRule(),
    GenerationDisciplineRule(),
    DeterminismRule(),
    WireHygieneRule(),
)
