"""Repo tooling (archlint, benchmark regression gate)."""
