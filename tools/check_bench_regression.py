#!/usr/bin/env python3
"""Benchmark-regression gate for the shard-throughput artifact.

Compares a freshly generated ``BENCH_shard_throughput.json`` against the
committed baseline and fails when the k=1 serial object-ingress engine (the
stable reference point every other sweep point is normalized to) regresses by
more than the allowed fraction.  Shared-runner noise is real, so the default
gate is deliberately loose (25%) — it exists to catch code-level collapses
(an accidentally disabled cache, a quadratic hot path), not 5% jitter.

Usage:
    python tools/check_bench_regression.py BASELINE.json FRESH.json [--max-regression 0.25]

Exit status 0 on pass, 1 on regression, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def reference_pps(artifact: dict) -> float:
    """The k=1 / serial / object-ingress pps of a shard-throughput artifact.

    Accepts both the current schema (per-point ``executor``/``ingress``
    fields) and the pre-wire-path schema (top-level ``executor`` only).
    """
    for point in artifact.get("points", []):
        if (
            point.get("n_shards") == 1
            and point.get("executor", artifact.get("executor", "serial")) == "serial"
            and point.get("ingress", "object") == "object"
        ):
            return float(point["pps"])
    raise KeyError("no k=1 serial object-ingress point in artifact")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_shard_throughput.json")
    parser.add_argument("fresh", help="freshly generated BENCH_shard_throughput.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum allowed fractional pps drop at k=1 serial (default 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline = reference_pps(json.load(handle))
        with open(args.fresh) as handle:
            fresh = reference_pps(json.load(handle))
    except (OSError, KeyError, ValueError) as error:
        print(f"check_bench_regression: cannot read artifacts: {error}", file=sys.stderr)
        return 2

    floor = baseline * (1.0 - args.max_regression)
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"shard throughput k=1 serial: baseline {baseline:,.0f} pps, "
        f"fresh {fresh:,.0f} pps, floor {floor:,.0f} pps -> {verdict}"
    )
    if fresh < floor:
        print(
            f"check_bench_regression: k=1 serial pps regressed more than "
            f"{args.max_regression:.0%} against the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
