#!/usr/bin/env python3
"""Benchmark-regression gate for the shard-throughput artifact.

Three gates against the committed ``BENCH_shard_throughput.json`` baseline:

1. **Throughput**: the k=1 serial object-ingress pps (the stable reference
   point every other sweep point is normalized to) must not drop more than
   the allowed fraction.  Shared-runner noise is real, so the default gate is
   deliberately loose (25%) — it exists to catch code-level collapses (an
   accidentally disabled cache, a quadratic hot path), not 5% jitter.
2. **Placement skew**: the skewed-sweep point's rebalanced max/mean per-shard
   packet skew (``rebalance.skew_rebalanced``) must not regress more than the
   same fraction.  Unlike pps this number is a deterministic packet count, so
   a failure here is always a real policy/migration defect, never jitter; the
   25% headroom only absorbs deliberate workload retunes.  Skipped (with a
   note) when either artifact predates the ``rebalance`` key.
3. **Thread executor**: the ``parallelism.thread_k4_vs_serial_k1`` pps ratio
   must not drop more than the allowed fraction — a collapse here means the
   free-threaded executor grew a serialization point (a lock on the hot
   path, an accidental fallback to snapshot shipping).  The gate REFUSES to
   compare artifacts measured under different GIL regimes
   (``parallelism.gil_enabled`` mismatch): a GIL-bound ratio near 1.0 and a
   free-threaded ratio near k are different experiments, and gating one
   against the other would either always fail or hide real regressions.
   Skipped (with a note) when the baseline predates the ``parallelism`` key.
4. **Coordinator overhead**: the serial k=4 profile's partition+codec
   ns/packet (``coordinator.serial`` stage rates — the coordinator-thread
   work Amdahl's law charges against every added shard) must not grow more
   than the allowed fraction.  Skipped (with a note) when the baseline
   predates the ``coordinator`` key; a fresh artifact without it fails, the
   stage profile must not silently stop being measured.

Usage:
    python tools/check_bench_regression.py BASELINE.json FRESH.json [--max-regression 0.25]

Exit status 0 on pass, 1 on regression, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def reference_pps(artifact: dict) -> float:
    """The k=1 / serial / object-ingress pps of a shard-throughput artifact.

    Accepts both the current schema (per-point ``executor``/``ingress``
    fields) and the pre-wire-path schema (top-level ``executor`` only).
    """
    for point in artifact.get("points", []):
        if (
            point.get("n_shards") == 1
            and point.get("executor", artifact.get("executor", "serial")) == "serial"
            and point.get("ingress", "object") == "object"
        ):
            return float(point["pps"])
    raise KeyError("no k=1 serial object-ingress point in artifact")


def rebalanced_skew(artifact: dict) -> float:
    """The skewed-sweep point's rebalanced max/mean per-shard packet skew.

    Raises :class:`KeyError` when the artifact predates the ``rebalance``
    key (pre-placement-subsystem schema).
    """
    return float(artifact["rebalance"]["skew_rebalanced"])


def check_skew_gate(baseline_artifact: dict, fresh_artifact: dict, max_regression: float) -> bool:
    """Gate the rebalanced shard-skew ratio; returns True when it passes.

    The ratio's floor is 1.0 (a perfectly even placement), so the allowed
    regression is applied to the *excess* over 1.0: a baseline of 1.02 must
    not balloon past 1.0 + 0.02 * 1.25.  Gating the raw ratio instead would
    let a near-perfect baseline absorb a 25-percentage-point collapse.

    The gate is skipped only when the *baseline* predates the ``rebalance``
    key; once the baseline carries it, a fresh artifact without it means the
    benchmark stopped emitting the rows — that fails, it must not silently
    erode the gate.
    """
    try:
        baseline = rebalanced_skew(baseline_artifact)
    except (KeyError, TypeError, ValueError):
        print("shard skew (rebalanced): baseline predates the 'rebalance' rows, gate skipped")
        return True
    try:
        fresh = rebalanced_skew(fresh_artifact)
    except (KeyError, TypeError, ValueError):
        print(
            "check_bench_regression: baseline has 'rebalance' rows but the fresh "
            "artifact does not — the skewed sweep stopped being measured",
            file=sys.stderr,
        )
        return False
    ceiling = 1.0 + (baseline - 1.0) * (1.0 + max_regression)
    verdict = "OK" if fresh <= ceiling else "REGRESSION"
    print(
        f"shard skew (rebalanced): baseline {baseline:.4f}x, "
        f"fresh {fresh:.4f}x, ceiling {ceiling:.4f}x -> {verdict}"
    )
    if fresh > ceiling:
        print(
            f"check_bench_regression: rebalanced shard skew regressed more than "
            f"{max_regression:.0%} against the committed baseline (deterministic "
            "packet counts — this is a policy/migration defect, not noise)",
            file=sys.stderr,
        )
        return False
    return True


def thread_ratio(artifact: dict) -> float:
    """The parallelism sweep's thread-k4 / serial-k1 pps ratio.

    Raises :class:`KeyError` when the artifact predates the ``parallelism``
    key (pre-thread-executor schema).
    """
    return float(artifact["parallelism"]["thread_k4_vs_serial_k1"])


def check_thread_gate(baseline_artifact: dict, fresh_artifact: dict, max_regression: float) -> bool:
    """Gate the thread-executor pps ratio; returns True when it passes.

    Same skip/fail asymmetry as the skew gate: a baseline without the
    ``parallelism`` rows skips the gate, a fresh artifact without them fails
    it.  Additionally, artifacts measured under different GIL regimes are
    never compared — the ratio's whole scale changes between a GIL-bound and
    a free-threaded interpreter, so the comparison is refused (skipped
    loudly) rather than produce a meaningless verdict.
    """
    try:
        baseline = thread_ratio(baseline_artifact)
    except (KeyError, TypeError, ValueError):
        print("thread executor: baseline predates the 'parallelism' rows, gate skipped")
        return True
    try:
        fresh = thread_ratio(fresh_artifact)
    except (KeyError, TypeError, ValueError):
        print(
            "check_bench_regression: baseline has 'parallelism' rows but the fresh "
            "artifact does not — the executor matrix stopped being measured",
            file=sys.stderr,
        )
        return False
    baseline_gil = bool(baseline_artifact["parallelism"].get("gil_enabled", True))
    fresh_gil = bool(fresh_artifact["parallelism"].get("gil_enabled", True))
    if baseline_gil != fresh_gil:
        print(
            f"thread executor: REFUSING cross-GIL-regime comparison — baseline "
            f"measured with gil_enabled={baseline_gil}, fresh with "
            f"gil_enabled={fresh_gil}.  A GIL-bound thread-k4/serial-k1 ratio "
            "(~1.0) and a free-threaded one (~k) are different experiments; "
            "re-baseline on the matching interpreter build instead.  Gate skipped."
        )
        return True
    floor = baseline * (1.0 - max_regression)
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"thread executor k=4 vs serial k=1 (gil_enabled={fresh_gil}): "
        f"baseline {baseline:.3f}x, fresh {fresh:.3f}x, floor {floor:.3f}x -> {verdict}"
    )
    if fresh < floor:
        print(
            f"check_bench_regression: thread-executor pps ratio regressed more "
            f"than {max_regression:.0%} against the committed baseline (same GIL "
            "regime — likely a new serialization point on the shard hot path)",
            file=sys.stderr,
        )
        return False
    return True


def coordinator_overhead_ns(artifact: dict) -> float:
    """Partition+codec ns/packet of the serial k=4 coordinator profile.

    The serial executor has no codec stages (encode/replay are 0 there), so
    this is effectively the columnar partition cost — but the codec rates are
    summed in anyway so a future serial-side codec stage cannot dodge the
    gate.  Raises :class:`KeyError` when the artifact predates the
    ``coordinator`` key.
    """
    per_packet = artifact["coordinator"]["serial"]["stage_ns_per_packet"]
    return (
        float(per_packet["partition"])
        + float(per_packet["encode"])
        + float(per_packet["replay"])
    )


def check_coordinator_gate(
    baseline_artifact: dict, fresh_artifact: dict, max_regression: float
) -> bool:
    """Gate the coordinator's serial-stage overhead; True when it passes.

    Same skip/fail asymmetry as the other optional-key gates: a baseline
    without the ``coordinator`` profile skips, a fresh artifact without it
    fails.  The gated number is wall time per packet, so the headroom has to
    absorb scheduler jitter like the pps gate does — 25% catches a columnar
    pass falling back to per-packet loops (a multiple, not a percentage)
    without tripping on machine noise.
    """
    try:
        baseline = coordinator_overhead_ns(baseline_artifact)
    except (KeyError, TypeError, ValueError):
        print("coordinator overhead: baseline predates the 'coordinator' profile, gate skipped")
        return True
    try:
        fresh = coordinator_overhead_ns(fresh_artifact)
    except (KeyError, TypeError, ValueError):
        print(
            "check_bench_regression: baseline has the 'coordinator' profile but "
            "the fresh artifact does not — the stage breakdown stopped being "
            "measured",
            file=sys.stderr,
        )
        return False
    ceiling = baseline * (1.0 + max_regression)
    verdict = "OK" if fresh <= ceiling else "REGRESSION"
    print(
        f"coordinator overhead (k=4 serial, partition+codec): baseline "
        f"{baseline:,.0f} ns/pkt, fresh {fresh:,.0f} ns/pkt, ceiling "
        f"{ceiling:,.0f} ns/pkt -> {verdict}"
    )
    if fresh > ceiling:
        print(
            f"check_bench_regression: coordinator partition+codec ns/packet grew "
            f"more than {max_regression:.0%} against the committed baseline — "
            "the serial fraction Amdahl charges per shard got heavier",
            file=sys.stderr,
        )
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_shard_throughput.json")
    parser.add_argument("fresh", help="freshly generated BENCH_shard_throughput.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum allowed fractional regression for both gates (default 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline_artifact = json.load(handle)
        with open(args.fresh) as handle:
            fresh_artifact = json.load(handle)
        baseline = reference_pps(baseline_artifact)
        fresh = reference_pps(fresh_artifact)
    except (OSError, KeyError, ValueError) as error:
        print(f"check_bench_regression: cannot read artifacts: {error}", file=sys.stderr)
        return 2

    failed = False
    floor = baseline * (1.0 - args.max_regression)
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"shard throughput k=1 serial: baseline {baseline:,.0f} pps, "
        f"fresh {fresh:,.0f} pps, floor {floor:,.0f} pps -> {verdict}"
    )
    if fresh < floor:
        print(
            f"check_bench_regression: k=1 serial pps regressed more than "
            f"{args.max_regression:.0%} against the committed baseline",
            file=sys.stderr,
        )
        failed = True

    if not check_skew_gate(baseline_artifact, fresh_artifact, args.max_regression):
        failed = True
    if not check_thread_gate(baseline_artifact, fresh_artifact, args.max_regression):
        failed = True
    if not check_coordinator_gate(baseline_artifact, fresh_artifact, args.max_regression):
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
