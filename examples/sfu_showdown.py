#!/usr/bin/env python3
"""Head-to-head: Scallop vs. a single-core software SFU under growing load.

Runs the same two-party call through both SFUs to compare forwarding latency
(the Figure 19 experiment), then overloads the software SFU with additional
meetings to show the QoE collapse of Figures 3 and 4 — something that cannot
happen on the Scallop data plane, whose forwarding cost is constant per packet.

Both experiments build their topologies through :mod:`repro.scenario` (the
latency comparison swaps only the ``BackendSpec`` between the two runs; the
overload sweep drives imperative joins into an open-ended scenario).  The
canned ``flash_crowd`` scenario (``python -m repro.scenario flash_crowd``)
is the churn-flavoured cousin of the overload sweep.

Run with:  python examples/sfu_showdown.py
"""

from repro.experiments import (
    OverloadConfig,
    format_comparison,
    format_overload,
    run_latency_comparison,
    run_overload_experiment,
)


def main() -> None:
    print("=== forwarding latency: Scallop vs. software SFU (two-party call) ===")
    latency = run_latency_comparison(duration_s=10.0)
    print(format_comparison(latency))
    print(
        f"end-to-end (including identical access links): Scallop median "
        f"{latency.scallop_end_to_end.median:.3f} ms vs software "
        f"{latency.software_end_to_end.median:.3f} ms"
    )

    print("\n=== overloading the single-core software SFU ===")
    config = OverloadConfig(
        num_meetings=6,
        participants_per_meeting=8,
        seconds_per_join=0.5,
        media_scale=0.12,
        saturation_participants=30,
    )
    overload = run_overload_experiment(config)
    print(format_overload(overload))
    print(
        "\nTakeaway: the software SFU's jitter and frame rate collapse once its core "
        "saturates; Scallop forwards every packet in a fixed ~12 us regardless of load."
    )


if __name__ == "__main__":
    main()
