#!/usr/bin/env python3
"""Mega-meeting sweep: push many concurrent meetings through the data plane.

Two parts, both centred on the batched fast path:

1. **Pipeline throughput sweep** — configure 1..50 concurrent meetings on one
   :class:`~repro.dataplane.pipeline.ScallopPipeline`, replay the same media
   ingress through the per-packet reference path (``process``) and the batch
   fast path (``process_batch``), and report packets/second for both.  The
   batch path memoizes forwarding resolution per flow and shares one
   immutable meta view across replicas, so its advantage holds as the meeting
   population grows.

2. **End-to-end burst mode** — run a short simulated multi-meeting call with
   ``frame_bursts`` enabled, where each video frame traverses the network as
   one coalesced burst and the SFU ingests it through the batch API.

Run with:  python examples/mega_meeting_sweep.py
"""

from repro.experiments import (
    MeetingSetupConfig,
    build_scallop_testbed,
    format_batch_sweep,
    run_batch_throughput_sweep,
)

MEETING_SIZES = [1, 5, 10, 25, 50]


def run_burst_mode_call() -> None:
    print()
    print("=== end-to-end burst mode (10 meetings x 3 participants, 10 s) ===")
    config = MeetingSetupConfig(num_meetings=10, participants_per_meeting=3, frame_bursts=True)
    testbed = build_scallop_testbed(config)
    testbed.run_for(10.0)
    sfu = testbed.sfu
    reports = [client.get_stats() for client in testbed.clients]
    rates = [s.frames_per_second for report in reports for s in report.inbound_video]
    shares = sfu.data_plane_fraction()
    print(
        f"SFU forwarded {sfu.stats.packets_out} packets from {sfu.stats.packets_in} ingress; "
        f"data plane handled {shares['packets'] * 100:.2f}% of packets"
    )
    print(
        f"{len(rates)} inbound video streams at {sum(rates) / len(rates):.1f} fps mean "
        f"(parse cache hits: {sfu.pipeline.parser.parse_cache_hits})"
    )


def main() -> None:
    print("=== pipeline throughput, 8 participants/meeting ===")
    points = run_batch_throughput_sweep(meeting_counts=MEETING_SIZES)
    print(format_batch_sweep(points))
    run_burst_mode_call()


if __name__ == "__main__":
    main()
