#!/usr/bin/env python3
"""Mega-meeting sweep: push many concurrent meetings through the data plane.

Three parts, centred on the batched fast path and the flow-sharded engine:

1. **Pipeline throughput sweep** — configure 1..50 concurrent meetings on one
   :class:`~repro.dataplane.pipeline.ScallopPipeline`, replay the same media
   ingress through the per-packet reference path (``process``) and the batch
   fast path (``process_batch``), and report packets/second for both.  The
   batch path memoizes forwarding resolution per flow and shares one
   immutable meta view across replicas, so its advantage holds as the meeting
   population grows.

2. **Shard-count sweep** — the same 50-meeting ingress through
   :class:`~repro.dataplane.sharding.ShardedScallopPipeline` at k in
   {1, 2, 4}: flows partition across share-nothing datapath shards with
   byte-identical outputs.  Under the in-process serial executor the sweep
   quantifies the GIL bound (flat throughput, small partitioning overhead);
   ``executor="process"`` is the parallel escape hatch behind the same API.

3. **End-to-end burst mode** — a declarative multi-meeting
   :class:`repro.scenario.Scenario` with ``frame_bursts`` traffic and a
   4-shard SFU, where each video frame traverses the network as one
   schedule-preserving burst and the SFU ingests it through the sharded
   batch engine.  (The canned ``zipf_hotset`` scenario is the heterogeneous
   sibling: ``python -m repro.scenario zipf_hotset``.)

4. **Load-aware placement** (``--skew``) — replay a Zipf-skewed population
   (meeting sizes and per-meeting activity both Zipf-distributed, the hottest
   senders colocated by the CRC32 default the way a real hash collision pins
   them) through a 4-shard engine with the rebalancer armed, and print the
   before/after ``shard_load()`` skew table plus the migrations the placement
   loop executed.  With heterogeneous meeting sizes the policy's
   egress-weighted flow ranking balances *replica* work (the fan-out each
   packet actually costs), so watch the replica-skew line, not just packets.

Run with:  python examples/mega_meeting_sweep.py [--skew] [--profile]

``--profile`` attaches a :class:`repro.experiments.CoordinatorStats` to the
burst-mode call's 4-shard engine and prints the coordinator's Amdahl stage
table (partition / encode / dispatch / replay / reassemble) after the run.
"""

import argparse

from repro.dataplane import PipelineCounters, RebalancerConfig, ShardedScallopPipeline
from repro.experiments import (
    CoordinatorStats,
    build_skewed_meeting_pipeline,
    format_batch_sweep,
    format_shard_sweep,
    run_batch_throughput_sweep,
    run_shard_throughput_sweep,
    skewed_media_ingress,
    zipf_frames,
)
from repro.netsim.datagram import Address
from repro.scenario import BackendSpec, Scenario, TrafficSpec, build_scenario

MEETING_SIZES = [1, 5, 10, 25, 50]
SHARD_COUNTS = [1, 2, 4]
SFU = Address("10.0.0.1", 5000)


def format_shard_load(rows) -> str:
    lines = [
        f"{'shard':>6} {'packets':>9} {'replicas':>9} {'cpu':>6} {'occupancy':>10}"
    ]
    mean = sum(row["data_plane_packets"] for row in rows) / max(1, len(rows))
    replica_mean = sum(row["replicas_out"] for row in rows) / max(1, len(rows))
    for row in rows:
        lines.append(
            f"{int(row['shard']):>6} {int(row['data_plane_packets']):>9} "
            f"{int(row['replicas_out']):>9} {int(row['cpu_packets']):>6} "
            f"{row['stream_tracker_occupancy']:>10.6f}"
        )
    if mean:
        peak = max(row["data_plane_packets"] for row in rows)
        lines.append(f"{'':>6} max/mean packet skew: {peak / mean:.2f}x")
    if replica_mean:
        # with Zipf meeting *sizes* the egress-weighted policy balances
        # replica work, so this is the ratio the placement loop drives down
        replica_peak = max(row["replicas_out"] for row in rows)
        lines.append(f"{'':>6} max/mean replica skew: {replica_peak / replica_mean:.2f}x")
    return "\n".join(lines)


def run_skewed_rebalance_demo(num_meetings: int = 50, n_shards: int = 4) -> None:
    print(f"=== load-aware placement: Zipf-skewed workload, k={n_shards} ===")
    meeting_sizes = [max(3, round(10 / (rank + 1) ** 0.6)) for rank in range(num_meetings)]
    frames = zipf_frames(num_meetings)
    engine, senders = build_skewed_meeting_pipeline(
        num_meetings,
        n_shards,
        colocate_hot=14,
        participants_by_meeting=meeting_sizes,
        pipeline=ShardedScallopPipeline(
            SFU,
            n_shards=n_shards,
            executor="serial",
            rebalance_config=RebalancerConfig(
                epoch_batches=2, trigger_ratio=1.15, target_ratio=1.05, migration_budget=6
            ),
        ),
    )
    print(
        f"{num_meetings} meetings (sizes {max(meeting_sizes)}..{min(meeting_sizes)} "
        f"participants, Zipf), hottest senders hash-colocated on shard 0"
    )
    # one epoch of traffic under the static placement: this is the "before"
    engine.process_batch(skewed_media_ingress(senders, frames))
    print()
    print("before (static CRC32 placement, first batch):")
    print(format_shard_load(engine.shard_load()))
    # let the control loop converge, then measure one clean batch
    for batch in range(20):
        engine.process_batch(skewed_media_ingress(senders, frames))
    for shard in engine.shards:
        shard.counters = PipelineCounters()
    engine.process_batch(skewed_media_ingress(senders, frames))
    print()
    print(f"after ({engine.migrations_applied} live migrations, converged batch):")
    print(format_shard_load(engine.shard_load()))
    tracker = engine.load_tracker
    print()
    print(
        f"telemetry: {len(tracker.flows)} flows tracked over "
        f"{tracker.batches_observed} batches, EWMA skew {tracker.skew_ratio():.2f}x"
    )
    engine.close()


def run_burst_mode_call(profile: bool = False) -> None:
    print()
    print("=== end-to-end burst mode (10 meetings x 3 participants, 4 shards, 10 s) ===")
    scenario = Scenario.uniform(
        num_meetings=10,
        participants_per_meeting=3,
        name="burst-mode-call",
        backend=BackendSpec(kind="scallop", n_shards=4),
        traffic=TrafficSpec(frame_bursts=True),
        duration_s=10.0,
    )
    with build_scenario(scenario) as testbed:
        stats = None
        if profile:
            stats = testbed.sfu.pipeline.coordinator_stats = CoordinatorStats()
        testbed.run()
        sfu = testbed.sfu
        reports = [client.get_stats() for client in testbed.clients]
        rates = [s.frames_per_second for report in reports for s in report.inbound_video]
        shares = sfu.data_plane_fraction()
        print(
            f"SFU forwarded {sfu.stats.packets_out} packets from {sfu.stats.packets_in} ingress; "
            f"data plane handled {shares['packets'] * 100:.2f}% of packets"
        )
        parser = sfu.pipeline.parser_stats()
        busy = [shard.counters.data_plane_packets for shard in sfu.pipeline.shards]
        print(
            f"{len(rates)} inbound video streams at {sum(rates) / len(rates):.1f} fps mean "
            f"(parse cache hits: {parser.parse_cache_hits}; per-shard packets: {busy})"
        )
        if stats is not None:
            print()
            print(stats.format_table())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--skew",
        action="store_true",
        help="run the Zipf-skewed workload and show the rebalancer's "
        "before/after shard_load() skew table (skips the timing sweeps)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach CoordinatorStats to the burst-mode call's sharded engine "
        "and print its Amdahl stage table",
    )
    args = parser.parse_args()
    if args.skew:
        run_skewed_rebalance_demo()
        return
    print("=== pipeline throughput, 8 participants/meeting ===")
    points = run_batch_throughput_sweep(meeting_counts=MEETING_SIZES)
    print(format_batch_sweep(points))
    print()
    print("=== sharded engine at 50 meetings (serial executor: GIL-bound by design) ===")
    shard_points = run_shard_throughput_sweep(shard_counts=SHARD_COUNTS, num_meetings=50)
    print(format_shard_sweep(shard_points))
    run_burst_mode_call(profile=args.profile)


if __name__ == "__main__":
    main()
