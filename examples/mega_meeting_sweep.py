#!/usr/bin/env python3
"""Mega-meeting sweep: push many concurrent meetings through the data plane.

Three parts, centred on the batched fast path and the flow-sharded engine:

1. **Pipeline throughput sweep** — configure 1..50 concurrent meetings on one
   :class:`~repro.dataplane.pipeline.ScallopPipeline`, replay the same media
   ingress through the per-packet reference path (``process``) and the batch
   fast path (``process_batch``), and report packets/second for both.  The
   batch path memoizes forwarding resolution per flow and shares one
   immutable meta view across replicas, so its advantage holds as the meeting
   population grows.

2. **Shard-count sweep** — the same 50-meeting ingress through
   :class:`~repro.dataplane.sharding.ShardedScallopPipeline` at k in
   {1, 2, 4}: flows partition across share-nothing datapath shards with
   byte-identical outputs.  Under the in-process serial executor the sweep
   quantifies the GIL bound (flat throughput, small partitioning overhead);
   ``executor="process"`` is the parallel escape hatch behind the same API.

3. **End-to-end burst mode** — run a short simulated multi-meeting call with
   ``frame_bursts`` enabled and a 4-shard SFU, where each video frame
   traverses the network as one schedule-preserving burst and the SFU ingests
   it through the sharded batch engine.

Run with:  python examples/mega_meeting_sweep.py
"""

from repro.experiments import (
    MeetingSetupConfig,
    build_scallop_testbed,
    format_batch_sweep,
    format_shard_sweep,
    run_batch_throughput_sweep,
    run_shard_throughput_sweep,
)

MEETING_SIZES = [1, 5, 10, 25, 50]
SHARD_COUNTS = [1, 2, 4]


def run_burst_mode_call() -> None:
    print()
    print("=== end-to-end burst mode (10 meetings x 3 participants, 4 shards, 10 s) ===")
    config = MeetingSetupConfig(
        num_meetings=10, participants_per_meeting=3, frame_bursts=True, n_shards=4
    )
    testbed = build_scallop_testbed(config)
    testbed.run_for(10.0)
    sfu = testbed.sfu
    reports = [client.get_stats() for client in testbed.clients]
    rates = [s.frames_per_second for report in reports for s in report.inbound_video]
    shares = sfu.data_plane_fraction()
    print(
        f"SFU forwarded {sfu.stats.packets_out} packets from {sfu.stats.packets_in} ingress; "
        f"data plane handled {shares['packets'] * 100:.2f}% of packets"
    )
    parser = sfu.pipeline.parser_stats()
    busy = [shard.counters.data_plane_packets for shard in sfu.pipeline.shards]
    print(
        f"{len(rates)} inbound video streams at {sum(rates) / len(rates):.1f} fps mean "
        f"(parse cache hits: {parser.parse_cache_hits}; per-shard packets: {busy})"
    )


def main() -> None:
    print("=== pipeline throughput, 8 participants/meeting ===")
    points = run_batch_throughput_sweep(meeting_counts=MEETING_SIZES)
    print(format_batch_sweep(points))
    print()
    print("=== sharded engine at 50 meetings (serial executor: GIL-bound by design) ===")
    shard_points = run_shard_throughput_sweep(shard_counts=SHARD_COUNTS, num_meetings=50)
    print(format_shard_sweep(shard_points))
    run_burst_mode_call()


if __name__ == "__main__":
    main()
