#!/usr/bin/env python3
"""Capacity planning for a campus-scale video-conferencing deployment.

Generates a synthetic two-week campus workload (the Zoom-API dataset of the
paper's Appendix B), sizes the SFU infrastructure needed to serve it with a
fleet of 32-core software SFUs versus a single Scallop switch, and prints the
replication-design capacity table of Figure 17 for the campus's typical
meeting shapes.

This example is analytic (capacity arithmetic, no packet simulation); the
simulated workloads it sizes for live in :mod:`repro.scenario` — e.g.
``python -m repro.scenario zipf_hotset`` simulates the heterogeneous
Zipf-sized meeting population this planner reasons about.

Run with:  python examples/campus_capacity_planning.py
"""

from repro.core import MeetingShape, ReplicationDesign, RewriteVariant, ScallopCapacityModel, SoftwareSfuCapacityModel
from repro.trace import ZoomApiDataset, ZoomApiDatasetConfig, infrastructure_requirements

DATASET_MEETINGS = 3_000


def main() -> None:
    dataset = ZoomApiDataset.generate(ZoomApiDatasetConfig(num_meetings=DATASET_MEETINGS, seed=11))
    requirement = infrastructure_requirements(dataset)

    print("=== campus workload (synthetic, two weeks) ===")
    print(f"meetings generated:            {len(dataset.meetings):,}")
    print(f"two-party share:               {dataset.two_party_share() * 100:.0f}%")
    print(f"peak concurrent meetings:      {requirement.peak_concurrent_meetings}")
    print(f"peak concurrent participants:  {requirement.peak_concurrent_participants}")
    print(f"peak media load:               {requirement.peak_media_bps / 1e6:.0f} Mbit/s")
    print(f"peak switch-agent load:        {requirement.peak_control_bps / 1e6:.2f} Mbit/s")

    print("\n=== infrastructure required ===")
    print(f"32-core software SFU servers:  {requirement.software_servers_needed}")
    print(f"  (peak load is {requirement.software_nic_share * 100:.1f}% of one 40 Gbit/s server NIC)")
    print(f"Scallop switches:              {requirement.scallop_switches_needed}")
    print(f"  (switch agent uses {requirement.scallop_agent_share * 100:.2f}% of its 1 Gbit/s CPU path)")

    print("\n=== supported concurrent meetings by design (all participants sending) ===")
    scallop = ScallopCapacityModel()
    software = SoftwareSfuCapacityModel()
    print(f"{'participants':>13}{'two-party/NRA':>15}{'RA-R':>10}{'RA-SR':>10}{'software':>10}")
    for participants in (2, 5, 10, 25, 50, 100):
        shape = MeetingShape(participants=participants)
        if participants == 2:
            best = scallop.max_meetings_two_party(shape)
        else:
            best = scallop.max_meetings_nra(shape)
        print(
            f"{participants:>13}{best:>15,.0f}{scallop.max_meetings_ra_r(shape):>10,.0f}"
            f"{scallop.max_meetings_ra_sr(shape):>10,.0f}{software.max_meetings(shape):>10,.1f}"
        )

    ten = MeetingShape(participants=10)
    improvement = scallop.max_meetings(ten, ReplicationDesign.RA_SR, RewriteVariant.S_LR) / software.max_meetings(ten)
    print(f"\nworst-case Scallop configuration still supports {improvement:.0f}x more 10-party meetings than a 32-core server")


if __name__ == "__main__":
    main()
