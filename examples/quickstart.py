#!/usr/bin/env python3
"""Quickstart: run a three-party video conference through Scallop.

Builds the simulated network, starts the Scallop SFU (Tofino-like data plane +
switch agent + controller), signs three WebRTC clients into a meeting, runs
the call for 30 simulated seconds, and prints what each participant received
and how much of the workload stayed in the data plane.

Run with:  python examples/quickstart.py
"""

from repro.core import ScallopSfu
from repro.netsim import Address, Network, Simulator
from repro.webrtc import ClientConfig, WebRtcClient

SFU_ADDRESS = Address("10.0.0.1", 5000)
MEETING_ID = "quickstart-meeting"
CALL_DURATION_S = 30.0


def main() -> None:
    simulator = Simulator()
    network = Network(simulator, seed=1)

    # The SFU: a programmable switch plus its two-tier software control plane.
    sfu = ScallopSfu(SFU_ADDRESS, simulator, network)
    sfu.start()

    # Three participants, each sending AV1 L1T3 video and Opus audio.
    clients = []
    for index in range(3):
        config = ClientConfig(
            participant_id=f"participant-{index + 1}",
            meeting_id=MEETING_ID,
            address=Address(f"10.0.1.{index + 1}", 6000 + index),
            remote=SFU_ADDRESS,
            video_bitrate_bps=2_200_000,
            seed=index,
        )
        client = WebRtcClient(config, simulator, network)
        network.attach(client)
        sfu.join(client)       # SDP offer/answer through the controller
        client.start()
        clients.append(client)

    simulator.run_for(CALL_DURATION_S)

    print(f"=== {MEETING_ID} after {CALL_DURATION_S:.0f} simulated seconds ===")
    for client in clients:
        stats = client.get_stats()
        fps = ", ".join(f"{s.frames_per_second:.1f}" for s in stats.inbound_video)
        jitter = ", ".join(f"{s.jitter_ms:.2f}" for s in stats.inbound_video)
        print(
            f"{client.config.participant_id}: {len(stats.inbound_video)} video streams "
            f"at [{fps}] fps, jitter [{jitter}] ms, "
            f"{len(stats.inbound_audio)} audio streams"
        )

    shares = sfu.data_plane_fraction()
    print(
        f"data plane handled {shares['packets'] * 100:.2f}% of packets "
        f"and {shares['bytes'] * 100:.2f}% of bytes "
        f"(paper reports 96.46% / 99.65%)"
    )
    print(
        f"switch agent processed {sfu.agent.counters.packets_processed} packets, "
        f"installed {sfu.agent.counters.rule_updates} rule updates, "
        f"answered {sfu.agent.counters.stun_handled} STUN checks"
    )


if __name__ == "__main__":
    main()
