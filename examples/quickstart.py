#!/usr/bin/env python3
"""Quickstart: run a three-party video conference through Scallop.

Declares the workload as a :class:`repro.scenario.Scenario` (the public
workload API: meetings, schedule, backend, traffic model all in one spec),
builds it, runs the call for 30 simulated seconds, and prints what each
participant received and how much of the workload stayed in the data plane.

Beyond this flat call, the canned scenario library covers the interesting
workload families (run them with ``python -m repro.scenario <name>``):

=================  ==========================================================
Scenario           Exercises
=================  ==========================================================
steady             Flat population: forwarding, replication trees, feedback
                   rules, the data-plane/CPU split of Table 1.
churn_storm        Joins + leaves + a link-profile phase change on a sharded
                   dataplane with the load-aware rebalancer armed.
flash_crowd        A two-party call a crowd piles into: TWO_PARTY -> NRA
                   design promotion and controller reconfiguration storms.
degrading_uplink   Phased uplink loss/bandwidth decay: NACK/RTX, GCC, and
                   sequence rewriting under uplink loss.
zipf_hotset        Zipf meeting sizes on a sharded wire-native dataplane
                   with egress-weighted rebalancing.
=================  ==========================================================

Run with:  python examples/quickstart.py
"""

from repro.scenario import MeetingSpec, Scenario, build_scenario

CALL_DURATION_S = 30.0


def main() -> None:
    scenario = Scenario(
        name="quickstart",
        meetings=(
            MeetingSpec(
                participants=3,
                meeting_id="quickstart-meeting",
                video_bitrate_bps=2_200_000,
            ),
        ),
        duration_s=CALL_DURATION_S,
        seed=1,
    )

    with build_scenario(scenario) as run:
        run.run()

        print(f"=== quickstart-meeting after {CALL_DURATION_S:.0f} simulated seconds ===")
        for client in run.clients:
            stats = client.get_stats()
            fps = ", ".join(f"{s.frames_per_second:.1f}" for s in stats.inbound_video)
            jitter = ", ".join(f"{s.jitter_ms:.2f}" for s in stats.inbound_video)
            print(
                f"{client.config.participant_id}: {len(stats.inbound_video)} video streams "
                f"at [{fps}] fps, jitter [{jitter}] ms, "
                f"{len(stats.inbound_audio)} audio streams"
            )

        sfu = run.sfu
        shares = sfu.data_plane_fraction()
        print(
            f"data plane handled {shares['packets'] * 100:.2f}% of packets "
            f"and {shares['bytes'] * 100:.2f}% of bytes "
            f"(paper reports 96.46% / 99.65%)"
        )
        print(
            f"switch agent processed {sfu.agent.counters.packets_processed} packets, "
            f"installed {sfu.agent.counters.rule_updates} rule updates, "
            f"answered {sfu.agent.counters.stun_handled} STUN checks"
        )


if __name__ == "__main__":
    main()
