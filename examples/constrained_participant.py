#!/usr/bin/env python3
"""A classroom call where one student's downlink degrades mid-meeting.

Reproduces the behaviour of Figure 14 through the scenario API: the workload
is declared as a :class:`repro.scenario.Scenario` whose :class:`Schedule`
contains a timed link-profile phase change — at t=20 s the third
participant's downlink drops to 1.2 Mbit/s.  Scallop's switch agent then
lowers the decode target for the streams that participant receives (dropping
the top AV1 temporal layer in the data plane and rewriting sequence numbers)
while every other participant keeps full quality and the senders keep
encoding at their full rate.

The canned ``degrading_uplink`` library scenario is the uplink-side sibling
(``python -m repro.scenario degrading_uplink``): loss and shrinking
bandwidth on a *sender's* uplink, exercising NACK/RTX and GCC instead of
receiver-side adaptation.

Run with:  python examples/constrained_participant.py
"""

from repro.netsim import LinkProfile
from repro.scenario import BackendSpec, MeetingSpec, Scenario, Schedule, build_scenario

VIDEO_BITRATE_BPS = 650_000
CONSTRAINT_AT_S = 20.0
CONSTRAINED_DOWNLINK = LinkProfile(
    bandwidth_bps=1_200_000, propagation_delay_s=0.01, queue_limit_bytes=60_000
)


def main() -> None:
    scenario = Scenario(
        name="constrained-participant",
        meetings=(
            MeetingSpec(
                participants=3, meeting_id="seminar", video_bitrate_bps=VIDEO_BITRATE_BPS
            ),
        ),
        backend=BackendSpec(
            # decode-target thresholds scaled to the 650 kbit/s streams in use
            adaptation_thresholds_bps=(VIDEO_BITRATE_BPS * 0.8, VIDEO_BITRATE_BPS * 0.4),
        ),
        # phase 2 is data, not imperative code: p3's downlink degrades at t=20
        schedule=Schedule().set_link(
            CONSTRAINT_AT_S, "seminar", 2, downlink=CONSTRAINED_DOWNLINK
        ),
        duration_s=60.0,
        seed=7,
    )

    with build_scenario(scenario) as run:
        sfu = run.sfu
        clients = run.meeting("seminar")

        print("phase 1: every downlink healthy")
        run.run_for(CONSTRAINT_AT_S)
        report(run, clients)

        print("\nphase 2: p3's downlink drops to 1.2 Mbit/s (scheduled link event)")
        run.run_for(40.0)
        report(run, clients)

        constrained_id = clients[2].config.participant_id
        print(f"\ndecode targets chosen by the switch agent towards {constrained_id}:")
        for sender in clients[:2]:
            target = sfu.agent.decode_target_for(sender.config.participant_id, constrained_id)
            print(
                f"  {sender.config.participant_id} -> {constrained_id}: "
                f"DT{int(target)} ({target.frame_rate:.1f} fps)"
            )
        print(f"meeting replication design: {sfu.agent.meeting_design('seminar').value}")
        print(f"data-plane adaptation drops: {sfu.pipeline.counters.adaptation_drops}")
        for at_s, message in run.event_log:
            print(f"event @ {at_s:.1f}s: {message}")


def report(run, clients) -> None:
    now = run.simulator.now
    for client in clients:
        rates = [stream.frame_rate(4.0, now) for stream in client.video_receivers.values()]
        freezes = sum(stream.freeze_events for stream in client.video_receivers.values())
        formatted = ", ".join(f"{rate:.1f}" for rate in rates) or "none yet"
        print(f"  {client.config.participant_id}: receive fps [{formatted}], freezes {freezes}")


if __name__ == "__main__":
    main()
