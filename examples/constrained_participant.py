#!/usr/bin/env python3
"""A classroom call where one student is on a congested downlink.

Reproduces the behaviour of Figure 14: when the third participant's downlink
degrades, Scallop's switch agent lowers the decode target for the streams that
participant receives (dropping the top AV1 temporal layer in the data plane
and rewriting sequence numbers), while every other participant keeps full
quality and the senders keep encoding at their full rate.

Run with:  python examples/constrained_participant.py
"""

from repro.core import ScallopSfu
from repro.netsim import Address, LinkProfile, Network, Simulator
from repro.webrtc import ClientConfig, WebRtcClient

SFU_ADDRESS = Address("10.0.0.1", 5000)
VIDEO_BITRATE_BPS = 650_000
CONSTRAINED_DOWNLINK = LinkProfile(
    bandwidth_bps=1_200_000, propagation_delay_s=0.01, queue_limit_bytes=60_000
)


def main() -> None:
    simulator = Simulator()
    network = Network(simulator, seed=7)
    sfu = ScallopSfu(
        SFU_ADDRESS,
        simulator,
        network,
        # decode-target thresholds scaled to the 650 kbit/s streams in use
        adaptation_thresholds_bps=(VIDEO_BITRATE_BPS * 0.8, VIDEO_BITRATE_BPS * 0.4),
    )
    sfu.start()

    clients = []
    for index in range(3):
        config = ClientConfig(
            participant_id=f"p{index + 1}",
            meeting_id="seminar",
            address=Address(f"10.0.2.{index + 1}", 6100 + index),
            remote=SFU_ADDRESS,
            video_bitrate_bps=VIDEO_BITRATE_BPS,
            seed=index,
        )
        client = WebRtcClient(config, simulator, network)
        network.attach(client)
        sfu.join(client)
        client.start()
        clients.append(client)

    constrained = clients[2]

    print("phase 1: every downlink healthy")
    simulator.run_for(20.0)
    report(simulator, sfu, clients)

    print("\nphase 2: p3's downlink drops to 1.2 Mbit/s")
    network.set_downlink_profile(constrained.address, CONSTRAINED_DOWNLINK)
    simulator.run_for(40.0)
    report(simulator, sfu, clients)

    print("\ndecode targets chosen by the switch agent towards p3:")
    for sender in clients[:2]:
        target = sfu.agent.decode_target_for(sender.config.participant_id, "p3")
        print(f"  {sender.config.participant_id} -> p3: DT{int(target)} ({target.frame_rate:.1f} fps)")
    print(f"meeting replication design: {sfu.agent.meeting_design('seminar').value}")
    print(f"data-plane adaptation drops: {sfu.pipeline.counters.adaptation_drops}")


def report(simulator, sfu, clients) -> None:
    now = simulator.now
    for client in clients:
        rates = [stream.frame_rate(4.0, now) for stream in client.video_receivers.values()]
        freezes = sum(stream.freeze_events for stream in client.video_receivers.values())
        formatted = ", ".join(f"{rate:.1f}" for rate in rates) or "none yet"
        print(f"  {client.config.participant_id}: receive fps [{formatted}], freezes {freezes}")


if __name__ == "__main__":
    main()
